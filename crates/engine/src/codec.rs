//! Versioned binary persistence for fitted [`Series2Graph`] models.
//!
//! Training a Series2Graph model is the expensive step of the pipeline;
//! scoring against a fitted model is cheap. This codec makes *train once,
//! score many times across processes* possible: it round-trips every part of
//! a fitted model — configuration, PCA + rotation embedding, node set,
//! transition graph and the cached training contributions — so a loaded model
//! produces **bit-identical** scores to the in-memory one it was saved from.
//!
//! ## Format (`S2GMDL`, version 2)
//!
//! Little-endian throughout; every `f64` is stored as its IEEE-754 bit
//! pattern (`to_bits`), which is what guarantees bit-identical round-trips.
//! Version 2 is a *sectioned* layout: after the fixed header comes a seekable
//! section index, so a reader can open the small sections (config, embedding
//! basis, nodes, graph, train cache) without touching the large one (the
//! embedding points — by far the dominant share of a model file). That is
//! the property the lazy `s2g-store` model store is built on.
//!
//! ```text
//! magic      8 bytes  b"S2GMDL\xF0\x9F"
//! version    u32 = 2
//! count      u32      number of index entries (6)
//! index      count × { kind u32, offset u64, len u64, checksum u64 }
//!                     offset is absolute from the file start; checksum is
//!                     FNV-1a over exactly the section's payload bytes, so
//!                     each section verifies independently of the others
//! payloads   the section payloads, contiguous, in index order
//! trailer    u64      FNV-1a over all preceding bytes (whole-file integrity)
//! ```
//!
//! Section kinds and payloads (all arrays length-prefixed with a `u64`):
//!
//! | kind | payload |
//! |---|---|
//! | 1 `config` | pattern_length, lambda, rate, kde_grid_points: u64; smooth_scores u8; bandwidth tag u8 (0 = Scott \| 1 = SigmaRatio + f64); pca_solver tag u8 (0 = Covariance \| 1 = RandomizedSvd + oversample u64 + power_iterations u64 + seed u64); seed u64 |
//! | 2 `embedding` | explained_variance_ratio f64; pca: input_dim u64, n_components u64, mean f64[], components (row-major) f64[], explained_variance f64[], total_variance f64; rotation 9 × f64 (row-major 3×3) |
//! | 3 `points` | n u64, then n × (y f64, z f64) |
//! | 4 `nodes` | rate u64, then per ray an f64[] of node radii |
//! | 5 `graph` | node_count u64, edge_count u64, then per edge from u64, to u64, weight f64 |
//! | 6 `train` | train_len u64, contributions f64[], then *optionally* the adaptation lineage: parent_checksum u64, update_count u64, decay_lambda f64 |
//!
//! The lineage tail is written only for adapted models (those carrying an
//! [`AdaptationLineage`]); pristine fits encode exactly as before, so their
//! checksums are unchanged and older files (without the tail) keep
//! decoding. Readers detect the tail by the bytes remaining after the
//! contributions array.
//!
//! ## Version 1 (legacy, read-compatible)
//!
//! Version 1 files carry the same payloads with no index, concatenated
//! directly after `magic + version` in the order
//! `config, embedding, points, nodes, graph, train`, followed by the same
//! whole-file trailer. [`decode_model`] reads both versions and produces
//! bit-identical models from either encoding of the same fit;
//! [`encode_model_v1`] still writes the legacy layout (used by the store's
//! migration tests and downgrade tooling).
//!
//! Any truncation, bit flip or unknown version is rejected with a precise
//! [`Error`] instead of yielding a silently wrong model.

use std::io::Read;
use std::path::Path;

use s2g_core::config::BandwidthRule;
use s2g_core::embedding::Embedding;
use s2g_core::nodes::NodeSet;
use s2g_core::{AdaptationLineage, S2gConfig, Series2Graph};
use s2g_graph::DiGraph;
use s2g_linalg::matrix::DMatrix;
use s2g_linalg::pca::{Pca, PcaSolver};
use s2g_linalg::rotation::Rotation3;
use s2g_linalg::vector::Vec2;

use crate::error::{Error, Result};
use crate::util::fnv1a;

/// File magic: `S2GMDL` plus two non-ASCII bytes so text tools don't
/// misdetect the format.
pub const MAGIC: [u8; 8] = *b"S2GMDL\xF0\x9F";

/// Highest format version this build reads and the version it writes.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest format version this build still reads.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Byte length of the fixed header (magic + version + section count).
pub const FIXED_HEADER_LEN: usize = MAGIC.len() + 4 + 4;

/// Byte length of one section-index entry (kind + offset + len + checksum).
pub const INDEX_ENTRY_LEN: usize = 4 + 8 + 8 + 8;

// ---------------------------------------------------------------------------
// Section index
// ---------------------------------------------------------------------------

/// The six sections of a version-2 model file, in file order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionKind {
    /// Fit configuration ([`S2gConfig`]).
    Config,
    /// Embedding basis: explained variance, PCA, rotation — *without* the
    /// projected points.
    Embedding,
    /// The projected `(y, z)` trajectory of the training series: the
    /// dominant share of a model file, and the section a lazy reader
    /// faults in on demand.
    Points,
    /// The extracted pattern node set.
    Nodes,
    /// The transition graph `G_ℓ(N, E)`.
    Graph,
    /// Cached per-gap training contributions.
    Train,
}

impl SectionKind {
    /// Every section kind, in the order sections are written to the file.
    pub const ALL: [SectionKind; 6] = [
        SectionKind::Config,
        SectionKind::Embedding,
        SectionKind::Points,
        SectionKind::Nodes,
        SectionKind::Graph,
        SectionKind::Train,
    ];

    /// The on-disk tag of this kind.
    pub fn tag(self) -> u32 {
        match self {
            SectionKind::Config => 1,
            SectionKind::Embedding => 2,
            SectionKind::Points => 3,
            SectionKind::Nodes => 4,
            SectionKind::Graph => 5,
            SectionKind::Train => 6,
        }
    }

    /// The kind encoded by an on-disk tag, if known.
    pub fn from_tag(tag: u32) -> Option<SectionKind> {
        SectionKind::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// Human-readable section name (used in error messages).
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Config => "config",
            SectionKind::Embedding => "embedding",
            SectionKind::Points => "points",
            SectionKind::Nodes => "nodes",
            SectionKind::Graph => "graph",
            SectionKind::Train => "train",
        }
    }
}

impl std::fmt::Display for SectionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One entry of a version-2 section index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// Which section this entry locates.
    pub kind: SectionKind,
    /// Absolute byte offset of the section payload from the file start.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a checksum of exactly the payload bytes, so the section can be
    /// verified without reading any other part of the file.
    pub checksum: u64,
}

/// The parsed section index of a version-2 model file: where each section
/// lives, how long it is, and its independent checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionIndex {
    entries: Vec<SectionEntry>,
}

impl SectionIndex {
    /// The index entries, in file order.
    pub fn entries(&self) -> &[SectionEntry] {
        &self.entries
    }

    /// Total byte length of header + index (the file offset where the first
    /// payload starts).
    pub fn header_len(&self) -> usize {
        FIXED_HEADER_LEN + self.entries.len() * INDEX_ENTRY_LEN
    }

    /// The entry for `kind`, if present.
    pub fn get(&self, kind: SectionKind) -> Option<&SectionEntry> {
        self.entries.iter().find(|e| e.kind == kind)
    }

    /// The entry for `kind`, as a format error when absent.
    ///
    /// # Errors
    /// [`Error::Format`] naming the missing section.
    pub fn require(&self, kind: SectionKind) -> Result<&SectionEntry> {
        self.get(kind)
            .ok_or_else(|| Error::Format(format!("section index lacks the {kind} section")))
    }

    /// Checks that every entry lies within a file of `file_len` bytes
    /// (between the index and the 8-byte trailer), so a reader can trust
    /// the offsets before seeking.
    ///
    /// # Errors
    /// [`Error::Format`] for any out-of-bounds entry.
    pub fn validate_bounds(&self, file_len: u64) -> Result<()> {
        let header_len = self.header_len() as u64;
        let payload_end = file_len
            .checked_sub(8)
            .ok_or_else(|| Error::Format("file shorter than its trailer".to_string()))?;
        for entry in &self.entries {
            let end = entry.offset.checked_add(entry.len);
            if entry.offset < header_len || end.is_none_or(|end| end > payload_end) {
                return Err(Error::Format(format!(
                    "{} section [{}, +{}) escapes the file's {} payload bytes",
                    entry.kind, entry.offset, entry.len, payload_end
                )));
            }
        }
        Ok(())
    }

    /// Slices the payload of `kind` out of the complete file bytes.
    ///
    /// # Errors
    /// [`Error::Format`] when the section is missing or out of bounds.
    pub fn slice<'a>(&self, file_bytes: &'a [u8], kind: SectionKind) -> Result<&'a [u8]> {
        let entry = self.require(kind)?;
        let start = usize::try_from(entry.offset)
            .map_err(|_| Error::Format(format!("{kind} offset exceeds the platform word size")))?;
        let len = usize::try_from(entry.len)
            .map_err(|_| Error::Format(format!("{kind} length exceeds the platform word size")))?;
        start
            .checked_add(len)
            .and_then(|end| file_bytes.get(start..end))
            .ok_or_else(|| {
                Error::Format(format!(
                    "{kind} section [{start}, +{len}) escapes the {}-byte file",
                    file_bytes.len()
                ))
            })
    }
}

/// Parses the section index from the head of a version-2 file. `prefix`
/// must start at file offset 0 and be long enough to cover header + index
/// (`FIXED_HEADER_LEN + count × INDEX_ENTRY_LEN` bytes).
///
/// # Errors
/// [`Error::Format`] on bad magic, truncation, or a malformed index;
/// [`Error::UnsupportedVersion`] when the version field is not 2.
pub fn parse_section_index(prefix: &[u8]) -> Result<SectionIndex> {
    let mut r = Reader::new(prefix);
    let magic = r.take(MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err(Error::Format(
            "bad magic: not a Series2Graph model file".to_string(),
        ));
    }
    let version = r.get_u32("version")?;
    if version != 2 {
        return Err(Error::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let count = r.get_u32("section count")? as usize;
    if count == 0 || count > 32 {
        return Err(Error::Format(format!(
            "implausible section count {count} (expected 1..=32)"
        )));
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let section = format!("section index entry {i}");
        let tag = r.get_u32(&section)?;
        let kind = SectionKind::from_tag(tag)
            .ok_or_else(|| Error::Format(format!("{section}: unknown section kind tag {tag}")))?;
        let entry = SectionEntry {
            kind,
            offset: r.get_u64(&section)?,
            len: r.get_u64(&section)?,
            checksum: r.get_u64(&section)?,
        };
        if entries.iter().any(|e: &SectionEntry| e.kind == kind) {
            return Err(Error::Format(format!("duplicate {kind} section in index")));
        }
        entries.push(entry);
    }
    let index = SectionIndex { entries };
    for kind in SectionKind::ALL {
        index.require(kind)?;
    }
    Ok(index)
}

/// Reads the format version and, for version-2 files, the section index
/// from the head of a model file — without reading any payload bytes.
/// Returns `(version, None)` for version-1 files (which have no index).
///
/// This is the entry point a lazy reader uses: open the file, read the
/// header, then fetch exactly the sections it needs by offset.
///
/// # Errors
/// [`Error::Io`] on read failures, [`Error::Format`] /
/// [`Error::UnsupportedVersion`] on malformed or unreadable headers.
pub fn read_header<R: Read>(reader: &mut R) -> Result<(u32, Option<SectionIndex>)> {
    let mut fixed = [0u8; FIXED_HEADER_LEN];
    reader
        .read_exact(&mut fixed)
        .map_err(|_| truncated("fixed header"))?;
    if fixed[..MAGIC.len()] != MAGIC {
        return Err(Error::Format(
            "bad magic: not a Series2Graph model file".to_string(),
        ));
    }
    let version = u32::from_le_bytes(fixed[8..12].try_into().expect("4-byte slice"));
    match version {
        1 => Ok((1, None)),
        2 => {
            let count =
                u32::from_le_bytes(fixed[12..16].try_into().expect("4-byte slice")) as usize;
            if count == 0 || count > 32 {
                return Err(Error::Format(format!(
                    "implausible section count {count} (expected 1..=32)"
                )));
            }
            let mut rest = vec![0u8; count * INDEX_ENTRY_LEN];
            reader
                .read_exact(&mut rest)
                .map_err(|_| truncated("section index"))?;
            let mut prefix = fixed.to_vec();
            prefix.extend_from_slice(&rest);
            Ok((2, Some(parse_section_index(&prefix)?)))
        }
        v => Err(Error::UnsupportedVersion {
            found: v,
            supported: FORMAT_VERSION,
        }),
    }
}

/// Verifies a section payload against its index entry: exact length and
/// independent FNV-1a checksum. This is what makes partial reads safe —
/// a lazily-faulted section is checked without touching the rest of the
/// file.
///
/// # Errors
/// [`Error::Format`] on a length mismatch, [`Error::ChecksumMismatch`] on
/// corrupted payload bytes.
pub fn verify_section(entry: &SectionEntry, payload: &[u8]) -> Result<()> {
    if payload.len() as u64 != entry.len {
        return Err(Error::Format(format!(
            "{} section: expected {} bytes, read {}",
            entry.kind,
            entry.len,
            payload.len()
        )));
    }
    let computed = fnv1a(payload);
    if computed != entry.checksum {
        return Err(Error::ChecksumMismatch {
            stored: entry.checksum,
            computed,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Byte-level writer / reader
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(4096),
        }
    }

    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    fn put_f64_array(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, section: &str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| truncated(section))?;
        if end > self.bytes.len() {
            return Err(truncated(section));
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn get_u8(&mut self, section: &str) -> Result<u8> {
        Ok(self.take(1, section)?[0])
    }

    fn get_u32(&mut self, section: &str) -> Result<u32> {
        let b = self.take(4, section)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn get_u64(&mut self, section: &str) -> Result<u64> {
        let b = self.take(8, section)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn get_usize(&mut self, section: &str) -> Result<usize> {
        let v = self.get_u64(section)?;
        usize::try_from(v).map_err(|_| {
            Error::Format(format!(
                "{section}: value {v} exceeds the platform word size"
            ))
        })
    }

    /// Reads a length prefix that the remaining bytes must plausibly cover
    /// (each element occupying at least `elem_bytes`), so a corrupted length
    /// fails fast instead of attempting a huge allocation.
    fn get_len(&mut self, elem_bytes: usize, section: &str) -> Result<usize> {
        let n = self.get_usize(section)?;
        let remaining = self.bytes.len() - self.pos;
        if n.checked_mul(elem_bytes)
            .is_none_or(|total| total > remaining)
        {
            return Err(Error::Format(format!(
                "{section}: declared length {n} exceeds the {remaining} bytes left in the file"
            )));
        }
        Ok(n)
    }

    fn get_f64(&mut self, section: &str) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64(section)?))
    }

    fn get_f64_array(&mut self, section: &str) -> Result<Vec<f64>> {
        let n = self.get_len(8, section)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64(section)?);
        }
        Ok(out)
    }

    fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn expect_exhausted(&self, section: &str) -> Result<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(Error::Format(format!(
                "{} trailing bytes after the {section} payload",
                self.bytes.len() - self.pos
            )))
        }
    }
}

fn truncated(section: &str) -> Error {
    Error::Format(format!("truncated while reading {section}"))
}

// ---------------------------------------------------------------------------
// Section payload writers
// ---------------------------------------------------------------------------

fn write_config_section(w: &mut Writer, config: &S2gConfig) {
    w.put_usize(config.pattern_length);
    w.put_usize(config.lambda);
    w.put_usize(config.rate);
    w.put_usize(config.kde_grid_points);
    w.put_u8(config.smooth_scores as u8);
    match config.bandwidth {
        BandwidthRule::Scott => w.put_u8(0),
        BandwidthRule::SigmaRatio(ratio) => {
            w.put_u8(1);
            w.put_f64(ratio);
        }
    }
    match config.pca_solver {
        PcaSolver::Covariance => w.put_u8(0),
        PcaSolver::RandomizedSvd {
            oversample,
            power_iterations,
            seed,
        } => {
            w.put_u8(1);
            w.put_usize(oversample);
            w.put_usize(power_iterations);
            w.put_u64(seed);
        }
    }
    w.put_u64(config.seed);
}

fn write_embedding_section(w: &mut Writer, embedding: &Embedding) {
    w.put_f64(embedding.explained_variance_ratio);
    let pca = embedding.pca();
    w.put_usize(pca.input_dim());
    w.put_usize(pca.n_components());
    w.put_f64_array(pca.mean());
    w.put_f64_array(pca.components().as_slice());
    w.put_f64_array(pca.explained_variance());
    w.put_f64(pca.total_variance());
    for row in embedding.rotation().rows() {
        for v in row {
            w.put_f64(v);
        }
    }
}

fn write_points_section(w: &mut Writer, points: &[Vec2]) {
    w.put_usize(points.len());
    for p in points {
        w.put_f64(p.x);
        w.put_f64(p.y);
    }
}

fn write_nodes_section(w: &mut Writer, nodes: &NodeSet) {
    w.put_usize(nodes.rate());
    for ray in 0..nodes.rate() {
        w.put_f64_array(nodes.ray_nodes(ray));
    }
}

fn write_graph_section(w: &mut Writer, graph: &DiGraph) {
    w.put_usize(graph.node_count());
    w.put_usize(graph.edge_count());
    for edge in graph.edges() {
        w.put_usize(edge.from);
        w.put_usize(edge.to);
        w.put_f64(edge.weight);
    }
}

fn write_train_section(w: &mut Writer, model: &Series2Graph) {
    w.put_usize(model.train_len());
    w.put_f64_array(model.train_contributions());
    // The lineage tail is only present for adapted models, so pristine
    // fits keep their pre-adaptation encoding (and checksum) exactly.
    if let Some(lineage) = model.lineage() {
        w.put_u64(lineage.parent_checksum);
        w.put_u64(lineage.update_count);
        w.put_f64(lineage.decay_lambda);
    }
}

/// The six section payloads of a model, in [`SectionKind::ALL`] order.
fn section_payloads(model: &Series2Graph) -> [Vec<u8>; 6] {
    let mut payloads: [Vec<u8>; 6] = Default::default();
    for (slot, kind) in payloads.iter_mut().zip(SectionKind::ALL) {
        let mut w = Writer::new();
        match kind {
            SectionKind::Config => write_config_section(&mut w, model.config()),
            SectionKind::Embedding => write_embedding_section(&mut w, model.embedding()),
            SectionKind::Points => write_points_section(&mut w, &model.embedding().points),
            SectionKind::Nodes => write_nodes_section(&mut w, model.node_set()),
            SectionKind::Graph => write_graph_section(&mut w, model.graph()),
            SectionKind::Train => write_train_section(&mut w, model),
        }
        *slot = w.buf;
    }
    payloads
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Serialises a fitted model into the current (version 2, sectioned)
/// binary format.
pub fn encode_model(model: &Series2Graph) -> Vec<u8> {
    let payloads = section_payloads(model);
    let header_len = FIXED_HEADER_LEN + payloads.len() * INDEX_ENTRY_LEN;
    let total: usize = payloads.iter().map(Vec::len).sum();

    let mut w = Writer::new();
    w.buf.reserve(header_len + total + 8);
    w.buf.extend_from_slice(&MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u32(payloads.len() as u32);
    let mut offset = header_len as u64;
    for (kind, payload) in SectionKind::ALL.into_iter().zip(&payloads) {
        w.put_u32(kind.tag());
        w.put_u64(offset);
        w.put_u64(payload.len() as u64);
        w.put_u64(fnv1a(payload));
        offset += payload.len() as u64;
    }
    for payload in &payloads {
        w.buf.extend_from_slice(payload);
    }
    let checksum = fnv1a(&w.buf);
    w.put_u64(checksum);
    w.buf
}

/// Serialises a fitted model into the legacy version-1 layout (no section
/// index; payloads concatenated in order). Kept so migration paths and
/// downgrade tooling can produce v1 files; [`decode_model`] reads both
/// versions bit-identically.
pub fn encode_model_v1(model: &Series2Graph) -> Vec<u8> {
    let payloads = section_payloads(model);
    let mut w = Writer::new();
    w.buf.extend_from_slice(&MAGIC);
    w.put_u32(1);
    for payload in &payloads {
        w.buf.extend_from_slice(payload);
    }
    let checksum = fnv1a(&w.buf);
    w.put_u64(checksum);
    w.buf
}

/// Content checksum of a fitted model: the FNV-1a checksum its encoded form
/// carries as trailer (the same value a model file on disk ends with).
///
/// Two models have equal checksums iff their encoded bytes are identical,
/// making this a cheap *bit-for-bit* equality fingerprint: a model fitted
/// remotely from posted values can be compared against a local fit without
/// shipping either model over the wire.
///
/// # Example
///
/// ```
/// use s2g_core::{S2gConfig, Series2Graph};
/// use s2g_engine::codec;
/// use s2g_timeseries::TimeSeries;
///
/// let series = TimeSeries::from(
///     (0..2000)
///         .map(|i| (std::f64::consts::TAU * i as f64 / 90.0).sin())
///         .collect::<Vec<f64>>(),
/// );
/// let a = Series2Graph::fit(&series, &S2gConfig::new(45)).unwrap();
/// let b = Series2Graph::fit(&series, &S2gConfig::new(45)).unwrap();
/// // Fitting is deterministic, so two fits of the same series agree.
/// assert_eq!(codec::model_checksum(&a), codec::model_checksum(&b));
/// // The checksum is exactly the file trailer.
/// let encoded = codec::encode_model(&a);
/// let trailer = u64::from_le_bytes(encoded[encoded.len() - 8..].try_into().unwrap());
/// assert_eq!(codec::model_checksum(&a), trailer);
/// ```
pub fn model_checksum(model: &Series2Graph) -> u64 {
    let encoded = encode_model(model);
    checksum_trailer(&encoded)
}

/// The trailing 8-byte checksum of an encoded model file.
pub fn checksum_trailer(encoded: &[u8]) -> u64 {
    let trailer = &encoded[encoded.len() - 8..];
    u64::from_le_bytes(trailer.try_into().expect("8-byte checksum trailer"))
}

// ---------------------------------------------------------------------------
// Section payload readers
// ---------------------------------------------------------------------------

fn read_config_section(r: &mut Reader<'_>) -> Result<S2gConfig> {
    let pattern_length = r.get_usize("config.pattern_length")?;
    let lambda = r.get_usize("config.lambda")?;
    let rate = r.get_usize("config.rate")?;
    let kde_grid_points = r.get_usize("config.kde_grid_points")?;
    let smooth_scores = match r.get_u8("config.smooth_scores")? {
        0 => false,
        1 => true,
        v => {
            return Err(Error::Format(format!(
                "config.smooth_scores: invalid bool byte {v}"
            )))
        }
    };
    let bandwidth = match r.get_u8("config.bandwidth")? {
        0 => BandwidthRule::Scott,
        1 => BandwidthRule::SigmaRatio(r.get_f64("config.bandwidth.ratio")?),
        v => return Err(Error::Format(format!("config.bandwidth: unknown tag {v}"))),
    };
    let pca_solver = match r.get_u8("config.pca_solver")? {
        0 => PcaSolver::Covariance,
        1 => PcaSolver::RandomizedSvd {
            oversample: r.get_usize("config.pca_solver.oversample")?,
            power_iterations: r.get_usize("config.pca_solver.power_iterations")?,
            seed: r.get_u64("config.pca_solver.seed")?,
        },
        v => return Err(Error::Format(format!("config.pca_solver: unknown tag {v}"))),
    };
    let seed = r.get_u64("config.seed")?;
    let config = S2gConfig {
        pattern_length,
        lambda,
        rate,
        bandwidth,
        kde_grid_points,
        smooth_scores,
        pca_solver,
        seed,
    };
    config.validate()?;
    Ok(config)
}

/// Embedding basis without the projected points.
struct EmbeddingParts {
    explained_variance_ratio: f64,
    pca: Pca,
    rotation: Rotation3,
}

fn read_embedding_section(r: &mut Reader<'_>) -> Result<EmbeddingParts> {
    let explained_variance_ratio = r.get_f64("embedding.explained_variance_ratio")?;
    let input_dim = r.get_usize("embedding.pca.input_dim")?;
    let n_components = r.get_usize("embedding.pca.n_components")?;
    let mean = r.get_f64_array("embedding.pca.mean")?;
    let components_data = r.get_f64_array("embedding.pca.components")?;
    let explained_variance = r.get_f64_array("embedding.pca.explained_variance")?;
    let total_variance = r.get_f64("embedding.pca.total_variance")?;
    let components = DMatrix::from_vec(input_dim, n_components, components_data)
        .map_err(|e| Error::Format(format!("embedding.pca.components: {e}")))?;
    let pca = Pca::from_parts(mean, components, explained_variance, total_variance)
        .map_err(|e| Error::Format(format!("embedding.pca: {e}")))?;
    let mut rows = [[0.0f64; 3]; 3];
    for row in rows.iter_mut() {
        for v in row.iter_mut() {
            *v = r.get_f64("embedding.rotation")?;
        }
    }
    Ok(EmbeddingParts {
        explained_variance_ratio,
        pca,
        rotation: Rotation3::from_rows(rows),
    })
}

fn read_points_section(r: &mut Reader<'_>) -> Result<Vec<Vec2>> {
    let n_points = r.get_len(16, "points")?;
    let mut points = Vec::with_capacity(n_points);
    for _ in 0..n_points {
        let y = r.get_f64("points")?;
        let z = r.get_f64("points")?;
        points.push(Vec2::new(y, z));
    }
    Ok(points)
}

fn read_nodes_section(r: &mut Reader<'_>, expected_rate: usize) -> Result<NodeSet> {
    let node_rate = r.get_usize("nodes.rate")?;
    if node_rate != expected_rate {
        return Err(Error::Format(format!(
            "nodes.rate {node_rate} disagrees with config.rate {expected_rate}"
        )));
    }
    let mut radii = Vec::with_capacity(node_rate);
    for ray in 0..node_rate {
        radii.push(r.get_f64_array(&format!("nodes.ray[{ray}]"))?);
    }
    NodeSet::from_parts(node_rate, radii).map_err(|e| Error::Format(format!("nodes: {e}")))
}

fn read_graph_section(r: &mut Reader<'_>, expected_nodes: usize) -> Result<DiGraph> {
    let node_count = r.get_usize("graph.node_count")?;
    if node_count != expected_nodes {
        return Err(Error::Format(format!(
            "graph.node_count {node_count} disagrees with the node set's {expected_nodes}"
        )));
    }
    let edge_count = r.get_len(24, "graph.edge_count")?;
    let mut edges = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        let from = r.get_usize("graph.edge.from")?;
        let to = r.get_usize("graph.edge.to")?;
        let weight = r.get_f64("graph.edge.weight")?;
        edges.push((from, to, weight));
    }
    DiGraph::from_edges(node_count, edges).map_err(|e| Error::Format(format!("graph.edge: {e}")))
}

fn read_train_section(r: &mut Reader<'_>) -> Result<(usize, Vec<f64>, Option<AdaptationLineage>)> {
    let train_len = r.get_usize("train.len")?;
    let train_contributions = r.get_f64_array("train.contributions")?;
    // Adapted models append their lineage; pristine fits end here.
    let lineage = if r.is_exhausted() {
        None
    } else {
        Some(AdaptationLineage {
            parent_checksum: r.get_u64("train.lineage.parent_checksum")?,
            update_count: r.get_u64("train.lineage.update_count")?,
            decay_lambda: r.get_f64("train.lineage.decay_lambda")?,
        })
    };
    Ok((train_len, train_contributions, lineage))
}

/// Reassembles a model from fully-read section contents.
#[allow(clippy::too_many_arguments)]
fn assemble_model(
    config: S2gConfig,
    parts: EmbeddingParts,
    points: Vec<Vec2>,
    nodes: NodeSet,
    graph: DiGraph,
    train_len: usize,
    train_contributions: Vec<f64>,
    lineage: Option<AdaptationLineage>,
) -> Result<Series2Graph> {
    let embedding = Embedding::from_parts(
        config.pattern_length,
        config.lambda,
        parts.pca,
        parts.rotation,
        points,
        parts.explained_variance_ratio,
    );
    let mut model = Series2Graph::from_parts(
        config,
        embedding,
        nodes,
        graph,
        train_contributions,
        train_len,
    )?;
    model.set_lineage(lineage);
    Ok(model)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Deserialises a model from the versioned binary format (version 1 or 2),
/// verifying magic, version and the whole-file checksum before
/// reconstructing any part.
pub fn decode_model(bytes: &[u8]) -> Result<Series2Graph> {
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(Error::Format(
            "file shorter than the fixed header".to_string(),
        ));
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(Error::Format(
            "bad magic: not a Series2Graph model file".to_string(),
        ));
    }

    // Verify integrity before trusting any length field.
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte slice"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(Error::ChecksumMismatch { stored, computed });
    }

    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    match version {
        1 => decode_v1_body(&body[MAGIC.len() + 4..]),
        2 => {
            let index = parse_section_index(body)?;
            index.validate_bounds(bytes.len() as u64)?;
            decode_model_from_sections(
                index.slice(body, SectionKind::Config)?,
                index.slice(body, SectionKind::Embedding)?,
                index.slice(body, SectionKind::Points)?,
                index.slice(body, SectionKind::Nodes)?,
                index.slice(body, SectionKind::Graph)?,
                index.slice(body, SectionKind::Train)?,
            )
        }
        v => Err(Error::UnsupportedVersion {
            found: v,
            supported: FORMAT_VERSION,
        }),
    }
}

/// Decodes the concatenated payloads of a version-1 file (everything after
/// magic + version, before the trailer).
fn decode_v1_body(body: &[u8]) -> Result<Series2Graph> {
    let mut r = Reader::new(body);
    let config = read_config_section(&mut r)?;
    let parts = read_embedding_section(&mut r)?;
    let points = read_points_section(&mut r)?;
    let nodes = read_nodes_section(&mut r, config.rate)?;
    let graph = read_graph_section(&mut r, nodes.node_count())?;
    let (train_len, train_contributions, lineage) = read_train_section(&mut r)?;
    if !r.is_exhausted() {
        return Err(Error::Format(format!(
            "{} trailing bytes after the last section",
            body.len() - r.pos
        )));
    }
    assemble_model(
        config,
        parts,
        points,
        nodes,
        graph,
        train_len,
        train_contributions,
        lineage,
    )
}

/// Reassembles a model from its six section payloads, each verified to be
/// fully consumed. This is the decode path of a lazy reader that fetched
/// sections independently (e.g. the `s2g-store` model store faulting in
/// the points section on first score).
///
/// # Errors
/// [`Error::Format`] on any malformed, short or over-long payload.
pub fn decode_model_from_sections(
    config: &[u8],
    embedding: &[u8],
    points: &[u8],
    nodes: &[u8],
    graph: &[u8],
    train: &[u8],
) -> Result<Series2Graph> {
    let mut r = Reader::new(config);
    let config = read_config_section(&mut r)?;
    r.expect_exhausted("config")?;

    let mut r = Reader::new(embedding);
    let parts = read_embedding_section(&mut r)?;
    r.expect_exhausted("embedding")?;

    let mut r = Reader::new(points);
    let points = read_points_section(&mut r)?;
    r.expect_exhausted("points")?;

    let mut r = Reader::new(nodes);
    let nodes = read_nodes_section(&mut r, config.rate)?;
    r.expect_exhausted("nodes")?;

    let mut r = Reader::new(graph);
    let graph = read_graph_section(&mut r, nodes.node_count())?;
    r.expect_exhausted("graph")?;

    let mut r = Reader::new(train);
    let (train_len, train_contributions, lineage) = read_train_section(&mut r)?;
    r.expect_exhausted("train")?;

    assemble_model(
        config,
        parts,
        points,
        nodes,
        graph,
        train_len,
        train_contributions,
        lineage,
    )
}

// ---------------------------------------------------------------------------
// Section peeks (metadata without a full decode)
// ---------------------------------------------------------------------------

/// Decodes just the config section payload (e.g. to learn a stored model's
/// pattern length without reading the rest of the file).
///
/// # Errors
/// [`Error::Format`] on a malformed payload.
pub fn decode_config_section(payload: &[u8]) -> Result<S2gConfig> {
    let mut r = Reader::new(payload);
    let config = read_config_section(&mut r)?;
    r.expect_exhausted("config")?;
    Ok(config)
}

/// Reads `(node_count, edge_count)` from the head of a graph section
/// payload without decoding the edges.
///
/// # Errors
/// [`Error::Format`] on a truncated payload.
pub fn peek_graph_counts(payload: &[u8]) -> Result<(usize, usize)> {
    let mut r = Reader::new(payload);
    let node_count = r.get_usize("graph.node_count")?;
    let edge_count = r.get_usize("graph.edge_count")?;
    Ok((node_count, edge_count))
}

/// Reads `train_len` from the head of a train section payload.
///
/// # Errors
/// [`Error::Format`] on a truncated payload.
pub fn peek_train_len(payload: &[u8]) -> Result<usize> {
    let mut r = Reader::new(payload);
    r.get_usize("train.len")
}

/// Reads the adaptation lineage from a train section payload without
/// materialising the contributions array: `Ok(None)` for a pristine fit
/// (no lineage tail), the lineage for an adapted snapshot. This is how a
/// store answers "is this file adapted, and from what?" from its already
/// resident small sections.
///
/// # Errors
/// [`Error::Format`] on a malformed payload.
pub fn peek_train_lineage(payload: &[u8]) -> Result<Option<AdaptationLineage>> {
    let mut r = Reader::new(payload);
    let _train_len = r.get_usize("train.len")?;
    let n = r.get_len(8, "train.contributions")?;
    r.take(n * 8, "train.contributions")?;
    if r.is_exhausted() {
        return Ok(None);
    }
    let lineage = AdaptationLineage {
        parent_checksum: r.get_u64("train.lineage.parent_checksum")?,
        update_count: r.get_u64("train.lineage.update_count")?,
        decay_lambda: r.get_f64("train.lineage.decay_lambda")?,
    };
    r.expect_exhausted("train")?;
    Ok(Some(lineage))
}

/// Number of embedded points a points section payload declares, computed
/// from its index entry alone (each point is 16 bytes after the 8-byte
/// count).
pub fn points_len_from_entry(entry: &SectionEntry) -> usize {
    (entry.len.saturating_sub(8) / 16) as usize
}

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

/// Writes a fitted model to `path` in the versioned binary format.
pub fn save_model<P: AsRef<Path>>(path: P, model: &Series2Graph) -> Result<()> {
    std::fs::write(path, encode_model(model))?;
    Ok(())
}

/// Reads a fitted model from `path`, verifying magic, version and checksum.
pub fn load_model<P: AsRef<Path>>(path: P) -> Result<Series2Graph> {
    let bytes = std::fs::read(path)?;
    decode_model(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2g_timeseries::TimeSeries;

    fn fitted() -> Series2Graph {
        let values: Vec<f64> = (0..3000)
            .map(|i| (std::f64::consts::TAU * i as f64 / 80.0).sin())
            .collect();
        Series2Graph::fit(&TimeSeries::from(values), &S2gConfig::new(40)).unwrap()
    }

    #[test]
    fn encode_decode_preserves_structure() {
        let model = fitted();
        let bytes = encode_model(&model);
        let back = decode_model(&bytes).unwrap();
        assert_eq!(back.config().pattern_length, model.config().pattern_length);
        assert_eq!(back.node_count(), model.node_count());
        assert_eq!(back.graph().edge_count(), model.graph().edge_count());
        assert_eq!(back.train_len(), model.train_len());
        assert_eq!(back.train_contributions(), model.train_contributions());
        assert_eq!(
            back.embedding().points.len(),
            model.embedding().points.len()
        );
    }

    #[test]
    fn v1_and_v2_encodings_decode_to_identical_models() {
        let model = fitted();
        let v1 = encode_model_v1(&model);
        let v2 = encode_model(&model);
        assert_ne!(v1, v2, "the layouts must differ on the wire");
        let from_v1 = decode_model(&v1).unwrap();
        let from_v2 = decode_model(&v2).unwrap();
        // Both decode paths must agree bit-for-bit: re-encoding yields the
        // same canonical v2 bytes.
        assert_eq!(encode_model(&from_v1), encode_model(&from_v2));
        assert_eq!(encode_model(&from_v1), v2);
    }

    #[test]
    fn section_index_locates_and_verifies_every_section() {
        let model = fitted();
        let bytes = encode_model(&model);
        let index = parse_section_index(&bytes).unwrap();
        assert_eq!(index.entries().len(), 6);
        index.validate_bounds(bytes.len() as u64).unwrap();
        let mut end = index.header_len() as u64;
        for (entry, kind) in index.entries().iter().zip(SectionKind::ALL) {
            assert_eq!(entry.kind, kind);
            assert_eq!(entry.offset, end, "sections must be contiguous");
            end += entry.len;
            let payload = index.slice(&bytes, kind).unwrap();
            verify_section(entry, payload).unwrap();
        }
        assert_eq!(end as usize, bytes.len() - 8, "payloads end at the trailer");
        // The points section dominates and its length is derivable from the
        // index entry alone.
        let points = index.get(SectionKind::Points).unwrap();
        assert_eq!(
            points_len_from_entry(points),
            model.embedding().points.len()
        );
        // Peeks agree with the model.
        let graph_payload = index.slice(&bytes, SectionKind::Graph).unwrap();
        assert_eq!(
            peek_graph_counts(graph_payload).unwrap(),
            (model.node_count(), model.graph().edge_count())
        );
        let train_payload = index.slice(&bytes, SectionKind::Train).unwrap();
        assert_eq!(peek_train_len(train_payload).unwrap(), model.train_len());
        let config_payload = index.slice(&bytes, SectionKind::Config).unwrap();
        assert_eq!(
            decode_config_section(config_payload)
                .unwrap()
                .pattern_length,
            model.pattern_length()
        );
    }

    #[test]
    fn read_header_reads_only_the_header() {
        let model = fitted();
        let bytes = encode_model(&model);
        let index = parse_section_index(&bytes).unwrap();
        // A reader over *only* the header bytes suffices.
        let mut head = &bytes[..index.header_len()];
        let (version, parsed) = read_header(&mut head).unwrap();
        assert_eq!(version, 2);
        assert_eq!(parsed.unwrap(), index);
        // v1 files report no index.
        let v1 = encode_model_v1(&model);
        let (version, parsed) = read_header(&mut &v1[..]).unwrap();
        assert_eq!(version, 1);
        assert!(parsed.is_none());
    }

    #[test]
    fn decode_from_sections_matches_full_decode() {
        let model = fitted();
        let bytes = encode_model(&model);
        let index = parse_section_index(&bytes).unwrap();
        let take = |kind| index.slice(&bytes, kind).unwrap();
        let assembled = decode_model_from_sections(
            take(SectionKind::Config),
            take(SectionKind::Embedding),
            take(SectionKind::Points),
            take(SectionKind::Nodes),
            take(SectionKind::Graph),
            take(SectionKind::Train),
        )
        .unwrap();
        assert_eq!(encode_model(&assembled), bytes);
    }

    #[test]
    fn corrupted_sections_fail_independent_verification() {
        let model = fitted();
        let mut bytes = encode_model(&model);
        let index = parse_section_index(&bytes).unwrap();
        let entry = *index.require(SectionKind::Points).unwrap();
        bytes[entry.offset as usize + 10] ^= 0x40;
        let payload = index.slice(&bytes, SectionKind::Points).unwrap();
        assert!(matches!(
            verify_section(&entry, payload),
            Err(Error::ChecksumMismatch { .. })
        ));
        // Other sections still verify: the damage is localised.
        let graph = index.require(SectionKind::Graph).unwrap();
        verify_section(graph, index.slice(&bytes, SectionKind::Graph).unwrap()).unwrap();
    }

    #[test]
    fn lineage_round_trips_and_leaves_pristine_checksums_untouched() {
        let pristine = fitted();
        let pristine_bytes = encode_model(&pristine);

        let mut adapted = pristine.clone();
        adapted.set_lineage(Some(AdaptationLineage {
            parent_checksum: checksum_trailer(&pristine_bytes),
            update_count: 42,
            decay_lambda: 0.05,
        }));
        let adapted_bytes = encode_model(&adapted);
        // Adapted and pristine encodings differ only by the lineage tail.
        assert_eq!(adapted_bytes.len(), pristine_bytes.len() + 24);
        assert_ne!(
            checksum_trailer(&adapted_bytes),
            checksum_trailer(&pristine_bytes)
        );

        // Full decode restores the lineage bit-for-bit…
        let back = decode_model(&adapted_bytes).unwrap();
        let lineage = back.lineage().unwrap();
        assert_eq!(lineage.parent_checksum, checksum_trailer(&pristine_bytes));
        assert_eq!(lineage.update_count, 42);
        assert_eq!(lineage.decay_lambda.to_bits(), 0.05f64.to_bits());
        assert_eq!(encode_model(&back), adapted_bytes);
        // …and a pristine decode carries no lineage.
        assert!(decode_model(&pristine_bytes).unwrap().lineage().is_none());

        // The peek reads the lineage from the train payload alone.
        let index = parse_section_index(&adapted_bytes).unwrap();
        let train = index.slice(&adapted_bytes, SectionKind::Train).unwrap();
        let peeked = peek_train_lineage(train).unwrap().unwrap();
        assert_eq!(peeked, *back.lineage().unwrap());
        let pristine_index = parse_section_index(&pristine_bytes).unwrap();
        let pristine_train = pristine_index
            .slice(&pristine_bytes, SectionKind::Train)
            .unwrap();
        assert!(peek_train_lineage(pristine_train).unwrap().is_none());

        // The v1 layout carries the lineage too.
        let v1 = encode_model_v1(&adapted);
        assert_eq!(
            decode_model(&v1).unwrap().lineage(),
            back.lineage(),
            "v1 round-trip must preserve lineage"
        );
    }

    #[test]
    fn sigma_ratio_and_randomized_solver_round_trip() {
        let values: Vec<f64> = (0..2500)
            .map(|i| (std::f64::consts::TAU * i as f64 / 70.0).sin())
            .collect();
        let config = S2gConfig::new(35)
            .with_bandwidth(BandwidthRule::SigmaRatio(0.4))
            .with_pca_solver(PcaSolver::RandomizedSvd {
                oversample: 6,
                power_iterations: 2,
                seed: 99,
            })
            .with_smoothing(false);
        let model = Series2Graph::fit(&TimeSeries::from(values), &config).unwrap();
        let back = decode_model(&encode_model(&model)).unwrap();
        assert_eq!(back.config().bandwidth, BandwidthRule::SigmaRatio(0.4));
        assert_eq!(
            back.config().pca_solver,
            PcaSolver::RandomizedSvd {
                oversample: 6,
                power_iterations: 2,
                seed: 99
            }
        );
        assert!(!back.config().smooth_scores);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let model = fitted();
        let mut bytes = encode_model(&model);
        bytes[0] = b'X';
        assert!(matches!(decode_model(&bytes), Err(Error::Format(_))));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let model = fitted();
        let mut bytes = encode_model(&model);
        // Bump the version field and re-seal the checksum so only the version
        // check can fire.
        bytes[8] = 0xFF;
        let body_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            decode_model(&bytes),
            Err(Error::UnsupportedVersion {
                found: 0xFF,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn flipped_bit_is_caught_by_checksum() {
        let model = fitted();
        let mut bytes = encode_model(&model);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            decode_model(&bytes),
            Err(Error::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_rejected_everywhere() {
        let model = fitted();
        for bytes in [encode_model(&model), encode_model_v1(&model)] {
            // Every prefix must fail cleanly — never panic, never succeed.
            for cut in [
                0,
                4,
                MAGIC.len(),
                MAGIC.len() + 4,
                FIXED_HEADER_LEN + 13,
                bytes.len() / 3,
                bytes.len() - 1,
            ] {
                assert!(
                    decode_model(&bytes[..cut]).is_err(),
                    "prefix of {cut} bytes accepted"
                );
            }
        }
    }
}
