//! Small crate-internal helpers shared across modules.

/// FNV-1a over a byte slice. Used both as the model file's integrity
/// checksum ([`crate::codec`]) and as the shard-pinning hash of streaming
/// session ids ([`crate::pool`]).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
