//! The `s2g` binary: CLI front-end of the Series2Graph detection engine.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(s2g_engine::cli::run(&args));
}
