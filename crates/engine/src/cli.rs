//! Implementation of the `s2g` command-line interface.
//!
//! Subcommands:
//!
//! * `s2g fit` — fit a model on a CSV series and persist it,
//! * `s2g score` — load a persisted model and score one or more CSV series
//!   (fanned across the worker pool when more than one input is given),
//! * `s2g stream` — replay a CSV series through an incremental
//!   [`StreamingScorer`] session in chunks; `--adapt` scores through an
//!   [`s2g_adapt::AdaptiveScorer`] instead (decayed edge
//!   updates, drift detection, optional refits) and reports the
//!   adaptation summary,
//! * `s2g bench-throughput` — synthetic multi-series throughput benchmark of
//!   the worker pool vs. a sequential loop, with per-batch latency
//!   percentiles and optional machine-readable `--json` output,
//! * `s2g eval` — the accuracy gauntlet: S2G (frozen and adaptive) plus all
//!   eight baselines over the labelled scenario registry, with AUC / top-k
//!   metrics, deterministic `--json` lines for `BENCH_ACCURACY.json`, and a
//!   `--check` mode that fails when a win condition is violated.
//!
//! Argument parsing is hand-rolled (the workspace is offline; no `clap`).
//! All functions are library-level so integration tests can drive the CLI
//! in-process as well as through the binary.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use s2g_adapt::{AdaptConfig, AdaptiveScorer};
use s2g_core::config::BandwidthRule;
use s2g_core::{S2gConfig, Series2Graph, StreamingScorer};
use s2g_timeseries::{io, TimeSeries};

use crate::codec;
use crate::engine::EngineConfig;
use crate::pool::ScoreJob;

/// Usage text printed by `s2g help` and on argument errors.
pub const USAGE: &str = "\
s2g — Series2Graph detection engine CLI

USAGE:
    s2g fit    --input <series.csv> --output <model.s2g> --pattern-length <n>
               [--lambda <n>] [--rate <n>] [--kde-grid <n>] [--sigma-ratio <x>]
               [--seed <n>] [--no-smooth]
    s2g score  --model <model.s2g> --query-length <n> [--top-k <k>]
               [--scores-out <csv>] [--workers <n>] <input.csv> [<input.csv>...]
    s2g stream --model <model.s2g> --query-length <n> [--chunk <n>]
               [--top-k <k>] [--adapt] [--adapt-lambda <x>]
               [--normal-quantile <x>] [--drift-window <n>]
               [--drift-threshold <x>] [--refit-buffer <n>]
               [--refit-cooldown <n>] [--adapted-out <model.s2g>] <input.csv>
    s2g bench-throughput [--workers <n>] [--series <n>] [--length <n>]
                         [--pattern-length <n>] [--query-length <n>]
                         [--batches <n>] [--sample-interval-ms <n>]
                         [--journal-dir <dir>] [--deadline-ms <n>]
                         [--skew] [--json]
    s2g eval   [--seed <n>] [--scenario <id>[,<id>...]] [--rev <tag>]
               [--fast] [--json] [--check] [--list]
    s2g help

Series files are single-column CSVs (one value per line; `#` comments and a
header row are tolerated). Model files use the versioned `S2GMDL` binary
format and score bit-identically to the in-process model they were saved
from.";

/// CLI failure: either a usage error (exit 2) or a runtime error (exit 1).
#[derive(Debug)]
pub enum CliError {
    /// Bad or missing arguments; the message explains which.
    Usage(String),
    /// The command itself failed (I/O, fit, malformed model, …).
    Runtime(String),
}

impl From<crate::error::Error> for CliError {
    fn from(e: crate::error::Error) -> Self {
        CliError::Runtime(e.to_string())
    }
}

impl From<s2g_core::Error> for CliError {
    fn from(e: s2g_core::Error) -> Self {
        CliError::Runtime(e.to_string())
    }
}

impl From<s2g_timeseries::Error> for CliError {
    fn from(e: s2g_timeseries::Error) -> Self {
        CliError::Runtime(e.to_string())
    }
}

/// Entry point used by the `s2g` binary: runs and maps errors to exit codes
/// (0 success, 1 runtime failure, 2 usage error).
pub fn run(args: &[String]) -> i32 {
    match dispatch(args) {
        Ok(()) => 0,
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            1
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            2
        }
    }
}

/// Runs one CLI invocation, returning a typed error instead of exiting.
pub fn dispatch(args: &[String]) -> Result<(), CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::Usage("missing subcommand".to_string()));
    };
    match command.as_str() {
        "fit" => cmd_fit(rest),
        "score" => cmd_score(rest),
        "stream" => cmd_stream(rest),
        "bench-throughput" => cmd_bench(rest),
        "eval" => cmd_eval(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Argument parsing
// ---------------------------------------------------------------------------

/// Hand-rolled `--flag value` / `--switch` / positional argument parser
/// shared by every `s2g` subcommand (the workspace is offline; no `clap`).
/// Public so front-end crates layering more subcommands on top of this CLI
/// (e.g. the `s2g-server` crate's `serve` and `client`) parse identically.
pub struct ParsedArgs {
    values: HashMap<&'static str, String>,
    switches: Vec<&'static str>,
    positional: Vec<String>,
}

impl ParsedArgs {
    /// Parses `args` against a fixed set of value-taking flags and boolean
    /// switches. Anything not starting with `--` is positional; an unknown
    /// `--flag` is a usage error.
    pub fn parse(
        args: &[String],
        value_flags: &'static [&'static str],
        switch_flags: &'static [&'static str],
    ) -> Result<Self, CliError> {
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut positional = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if let Some(&flag) = value_flags.iter().find(|&&f| f == arg) {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))?;
                values.insert(flag, value.clone());
            } else if let Some(&flag) = switch_flags.iter().find(|&&f| f == arg) {
                switches.push(flag);
            } else if arg.starts_with("--") {
                return Err(CliError::Usage(format!("unknown flag {arg:?}")));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(ParsedArgs {
            values,
            switches,
            positional,
        })
    }

    /// The value of a flag that must be present, as a usage error otherwise.
    pub fn required(&self, flag: &str) -> Result<&str, CliError> {
        self.values
            .get(flag)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("{flag} is required")))
    }

    /// The value of an optional flag, if given.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// An integer flag with an optional default (`None` = required).
    pub fn usize_flag(&self, flag: &str, default: Option<usize>) -> Result<usize, CliError> {
        match self.values.get(flag) {
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("{flag} expects an integer, got {raw:?}"))),
            None => default.ok_or_else(|| CliError::Usage(format!("{flag} is required"))),
        }
    }

    /// A floating-point flag, `None` when absent.
    pub fn f64_flag(&self, flag: &str) -> Result<Option<f64>, CliError> {
        match self.values.get(flag) {
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("{flag} expects a number, got {raw:?}"))),
            None => Ok(None),
        }
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, flag: &str) -> bool {
        self.switches.contains(&flag)
    }

    /// The positional (non-flag) arguments, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

fn build_config(args: &ParsedArgs) -> Result<S2gConfig, CliError> {
    let pattern_length = args.usize_flag("--pattern-length", None)?;
    let mut config = S2gConfig::new(pattern_length);
    if let Some(lambda) = args.values.get("--lambda") {
        config.lambda = lambda
            .parse()
            .map_err(|_| CliError::Usage(format!("--lambda expects an integer, got {lambda:?}")))?;
    }
    if args.values.contains_key("--rate") {
        config.rate = args.usize_flag("--rate", None)?;
    }
    if args.values.contains_key("--kde-grid") {
        config.kde_grid_points = args.usize_flag("--kde-grid", None)?;
    }
    if let Some(ratio) = args.f64_flag("--sigma-ratio")? {
        config.bandwidth = BandwidthRule::SigmaRatio(ratio);
    }
    if args.values.contains_key("--seed") {
        config.seed = args.usize_flag("--seed", None)? as u64;
    }
    if args.has("--no-smooth") {
        config.smooth_scores = false;
    }
    config
        .validate()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    Ok(config)
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

fn cmd_fit(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(
        args,
        &[
            "--input",
            "--output",
            "--pattern-length",
            "--lambda",
            "--rate",
            "--kde-grid",
            "--sigma-ratio",
            "--seed",
        ],
        &["--no-smooth"],
    )?;
    let input = args.required("--input")?;
    let output = args.required("--output")?;
    let config = build_config(&args)?;

    let series = io::read_series(input)?;
    let started = Instant::now();
    let model = Series2Graph::fit(&series, &config)?;
    let fit_time = started.elapsed();
    codec::save_model(output, &model)?;
    let file_len = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);

    println!(
        "fitted  {input} ({} points) in {fit_time:.2?}",
        series.len()
    );
    println!(
        "model   {} nodes, {} edges, {:.1}% variance explained",
        model.node_count(),
        model.graph().edge_count(),
        100.0 * model.explained_variance_ratio()
    );
    println!(
        "saved   {output} ({file_len} bytes, format v{})",
        codec::FORMAT_VERSION
    );
    Ok(())
}

fn cmd_score(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(
        args,
        &[
            "--model",
            "--query-length",
            "--top-k",
            "--scores-out",
            "--workers",
        ],
        &[],
    )?;
    let model_path = args.required("--model")?;
    let query_length = args.usize_flag("--query-length", None)?;
    let top_k = args.usize_flag("--top-k", Some(3))?;
    if args.positional.is_empty() {
        return Err(CliError::Usage(
            "score needs at least one input series".to_string(),
        ));
    }
    if args.values.contains_key("--scores-out") && args.positional.len() != 1 {
        return Err(CliError::Usage(
            "--scores-out is only supported with a single input series".to_string(),
        ));
    }

    let model = Arc::new(codec::load_model(model_path)?);
    let mut series = Vec::with_capacity(args.positional.len());
    for path in &args.positional {
        series.push(io::read_series(path)?);
    }
    let n_series = series.len();
    let total_points: usize = series.iter().map(TimeSeries::len).sum();

    let started = Instant::now();
    let profiles: Vec<Vec<f64>> = if n_series == 1 {
        vec![model.anomaly_scores(&series[0], query_length)?]
    } else {
        let workers = args
            .usize_flag("--workers", Some(EngineConfig::default().workers))?
            .max(1);
        let pool = crate::pool::WorkerPool::new(workers);
        // Move (not clone) the series into the jobs; lengths were captured.
        let jobs = series
            .drain(..)
            .map(|series| ScoreJob {
                model: Arc::clone(&model),
                series,
                query_length,
            })
            .collect();
        let mut out = Vec::with_capacity(n_series);
        for result in pool.score_batch(jobs) {
            out.push(result?);
        }
        out
    };
    let elapsed = started.elapsed();

    for (path, profile) in args.positional.iter().zip(&profiles) {
        let picks = model.top_k_anomalies(profile, top_k, query_length);
        for (rank, &start) in picks.iter().enumerate() {
            println!("{path}\t{}\t{start}\t{}", rank + 1, profile[start]);
        }
    }
    eprintln!(
        "scored {n_series} series ({total_points} points) with ℓq={query_length} in {elapsed:.2?}"
    );

    if let Some(out_path) = args.values.get("--scores-out") {
        let profile = &profiles[0];
        let starts: Vec<f64> = (0..profile.len()).map(|i| i as f64).collect();
        io::write_columns(out_path, &["start", "anomaly_score"], &[&starts, profile])?;
        eprintln!("wrote {} scores to {out_path}", profile.len());
    }
    Ok(())
}

/// Builds an [`AdaptConfig`] from the shared `--adapt-*` stream flags.
/// Used by both the local `s2g stream --adapt` and (via the server crate)
/// `s2g client stream --adapt`, so the two spell adaptation identically.
pub fn adapt_config_from_args(args: &ParsedArgs) -> Result<AdaptConfig, CliError> {
    let mut config = AdaptConfig::default();
    if let Some(lambda) = args.f64_flag("--adapt-lambda")? {
        config.lambda = lambda;
    }
    if let Some(quantile) = args.f64_flag("--normal-quantile")? {
        config.normal_quantile = quantile;
    }
    if args.get("--drift-window").is_some() {
        config.drift_window = args.usize_flag("--drift-window", None)?;
    }
    if let Some(threshold) = args.f64_flag("--drift-threshold")? {
        config.drift_threshold = threshold;
    }
    if args.get("--refit-buffer").is_some() {
        config.refit_buffer = args.usize_flag("--refit-buffer", None)?;
    }
    if args.get("--refit-cooldown").is_some() {
        config.refit_cooldown = args.usize_flag("--refit-cooldown", None)? as u64;
    }
    Ok(config)
}

fn cmd_stream(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(
        args,
        &[
            "--model",
            "--query-length",
            "--chunk",
            "--top-k",
            "--adapt-lambda",
            "--normal-quantile",
            "--drift-window",
            "--drift-threshold",
            "--refit-buffer",
            "--refit-cooldown",
            "--adapted-out",
        ],
        &["--adapt"],
    )?;
    let model_path = args.required("--model")?;
    let query_length = args.usize_flag("--query-length", None)?;
    let chunk = args.usize_flag("--chunk", Some(512))?.max(1);
    let top_k = args.usize_flag("--top-k", Some(3))?;
    let [input] = args.positional.as_slice() else {
        return Err(CliError::Usage(
            "stream needs exactly one input series".to_string(),
        ));
    };

    if args.get("--adapted-out").is_some() && !args.has("--adapt") {
        return Err(CliError::Usage(
            "--adapted-out requires --adapt".to_string(),
        ));
    }
    let model = codec::load_model(model_path)?;
    let series = io::read_series(input)?;
    let started = Instant::now();
    let (emitted, adapted) = if args.has("--adapt") {
        let adapt_config = adapt_config_from_args(&args)?;
        let parent_checksum = codec::model_checksum(&model);
        let mut scorer =
            AdaptiveScorer::new(model.clone(), query_length, adapt_config, parent_checksum)?;
        let mut emitted = Vec::new();
        for block in series.values().chunks(chunk) {
            emitted.extend(scorer.push_batch(block)?.emitted);
        }
        (emitted, Some(scorer))
    } else {
        let mut scorer = StreamingScorer::new(model.clone(), query_length)?;
        let mut emitted = Vec::new();
        for block in series.values().chunks(chunk) {
            emitted.extend(scorer.push_batch(block)?);
        }
        (emitted, None)
    };
    let elapsed = started.elapsed();

    let anomalies = StreamingScorer::to_anomaly_scores(&emitted);
    let profile: Vec<f64> = anomalies.iter().map(|&(_, s)| s).collect();
    let picks = model.top_k_anomalies(&profile, top_k, query_length);
    println!(
        "streamed {} points in {} chunks: {} windows emitted in {elapsed:.2?}",
        series.len(),
        series.len().div_ceil(chunk),
        emitted.len()
    );
    for (rank, &idx) in picks.iter().enumerate() {
        let (start, score) = anomalies[idx];
        println!("{input}\t{}\t{start}\t{score}", rank + 1);
    }
    if let Some(scorer) = adapted {
        let drift = scorer.drift_stats();
        println!(
            "adaptation: {} decayed updates, {} refits, drift shift {:.3} ({})",
            scorer.updates(),
            scorer.refits(),
            drift.shift,
            if drift.drifting { "drifting" } else { "stable" }
        );
        if let Some(out_path) = args.get("--adapted-out") {
            codec::save_model(out_path, &scorer.snapshot())?;
            println!(
                "adapted model saved to {out_path} (parent {:#018x}, {} updates)",
                scorer.lineage().parent_checksum,
                scorer.updates()
            );
        }
    }
    Ok(())
}

/// Nearest-rank percentile of already-sorted latencies, in milliseconds.
fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn cmd_bench(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(
        args,
        &[
            "--workers",
            "--series",
            "--length",
            "--pattern-length",
            "--query-length",
            "--batches",
            "--sample-interval-ms",
            "--journal-dir",
            "--deadline-ms",
        ],
        &["--json", "--skew"],
    )?;
    let workers = args
        .usize_flag("--workers", Some(EngineConfig::default().workers))?
        .max(1);
    let n_series = args.usize_flag("--series", Some(8))?.max(1);
    let length = args.usize_flag("--length", Some(20_000))?.max(1_000);
    let pattern_length = args.usize_flag("--pattern-length", Some(50))?;
    let query_length = args.usize_flag("--query-length", Some(150))?;
    let batches = args.usize_flag("--batches", Some(9))?.max(1);
    let journal_dir = args.get("--journal-dir").map(std::path::PathBuf::from);
    // Journaling rides on the sampler thread; `--journal-dir` alone turns
    // the sampler on at its densest cadence so there is traffic to write.
    let sample_interval_ms = match args.usize_flag("--sample-interval-ms", Some(0))? as u64 {
        0 if journal_dir.is_some() => 1,
        ms => ms,
    };
    let json = args.has("--json");
    let skew = args.has("--skew");
    // Per-batch deadline budget: every batch is submitted under a root
    // span whose deadline is `now + budget`, exercising the pool's
    // expired-task skip path under real scoring load. 0 disables.
    let deadline_ms = args.usize_flag("--deadline-ms", Some(0))? as u64;

    // Deterministic synthetic fleet: phase-shifted sines with a small
    // index-dependent wobble, so every run measures identical work. With
    // `--skew`, series 0 is 8× the nominal length and the rest shrink to a
    // quarter — the batch shape that defeats round-robin dispatch and that
    // the work-stealing scheduler rebalances.
    let series_length = |idx: usize| -> usize {
        if !skew {
            length
        } else if idx == 0 {
            length * 8
        } else {
            (length / 4).max(4 * query_length.max(pattern_length))
        }
    };
    let make_series = |idx: usize| -> TimeSeries {
        let phase = idx as f64 * 0.37;
        TimeSeries::from(
            (0..series_length(idx))
                .map(|i| {
                    let t = i as f64;
                    (std::f64::consts::TAU * t / 100.0 + phase).sin()
                        + 0.02 * ((t * 0.013 + idx as f64).sin())
                })
                .collect::<Vec<f64>>(),
        )
    };
    let train = make_series(0);
    let fleet: Vec<TimeSeries> = (0..n_series).map(make_series).collect();
    let total_points: usize = fleet.iter().map(TimeSeries::len).sum();

    let config = S2gConfig::new(pattern_length);
    let model = Arc::new(Series2Graph::fit(&train, &config)?);

    let t0 = Instant::now();
    let mut sequential = Vec::with_capacity(n_series);
    for series in &fleet {
        sequential.push(model.anomaly_scores(series, query_length)?);
    }
    let seq_time = t0.elapsed();

    // Run the same batch repeatedly through the pool and collect one
    // latency sample per batch, so tail percentiles mean something.
    let pool = crate::pool::WorkerPool::new(workers);
    // Per-task stage instrumentation: every task's queue wait (submit →
    // pickup) and execute time land in lock-free histograms, so the
    // report can split scheduling latency from scoring work.
    let obs = Arc::new(s2g_obs::Obs::new(&[], &[]));
    pool.attach_obs(Arc::clone(&obs));
    // Optional flight-recorder sampler riding along, mirroring `serve`'s
    // background sampling so the bench measures recorder overhead too:
    // one compact sample of every stage histogram per interval.
    let recorder = (sample_interval_ms > 0).then(|| {
        let schema = s2g_obs::recorder::SeriesSchema {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: obs.stages().iter().map(|(n, _)| n.to_string()).collect(),
        };
        Arc::new(s2g_obs::recorder::Recorder::new(
            schema,
            sample_interval_ms,
            4096,
        ))
    });
    // Optional durable journal under the sampler: every retained sample is
    // also streamed to segment files, so the bench doubles as the journal
    // overhead guard (the writer sheds under pressure, never blocks).
    let journal = match (&journal_dir, &recorder) {
        (Some(dir), Some(recorder)) => {
            let (journal, thread) = s2g_obs::journal::Journal::open(
                s2g_obs::journal::JournalConfig::new(dir),
                recorder.schema().clone(),
            )
            .map_err(|e| CliError::Runtime(format!("journal at {}: {e}", dir.display())))?;
            Some((journal, thread))
        }
        _ => None,
    };
    let sampler_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = recorder.as_ref().map(|recorder| {
        let recorder = Arc::clone(recorder);
        let obs = Arc::clone(&obs);
        let stop = Arc::clone(&sampler_stop);
        let journal = journal.as_ref().map(|(journal, _)| journal.clone());
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let sample = s2g_obs::recorder::Sample {
                    t_ns: s2g_obs::clock::now_ns(),
                    counters: Vec::new(),
                    gauges: Vec::new(),
                    histograms: obs
                        .stages()
                        .iter()
                        .map(|(_, hist)| {
                            s2g_obs::recorder::CompactHistogram::from_snapshot(&hist.snapshot())
                        })
                        .collect(),
                };
                if let Some(journal) = &journal {
                    journal.publish(s2g_obs::journal::JournalEvent::sample(sample.clone()));
                }
                recorder.push(sample);
                std::thread::sleep(std::time::Duration::from_millis(sample_interval_ms));
            }
        })
    });
    let mut batch_ms: Vec<f64> = Vec::with_capacity(batches);
    let mut completed_tasks = 0u64;
    for round in 0..batches {
        let jobs: Vec<ScoreJob> = fleet
            .iter()
            .map(|series| ScoreJob {
                model: Arc::clone(&model),
                series: series.clone(),
                query_length,
            })
            .collect();
        // With a deadline budget, each batch runs under its own root span
        // carrying `now + budget` — the same shape the serving layer builds
        // from `X-S2g-Deadline-Ms` — so queued tasks that outlive the
        // budget are skipped by the pool, not executed late.
        let ctx = (deadline_ms > 0).then(|| {
            let trace = s2g_obs::TraceHandle::new(s2g_obs::TraceId(round as u64 + 1));
            let root = trace.begin("bench.batch", None);
            let ctx = root.ctx().with_deadline(Some(
                Instant::now() + std::time::Duration::from_millis(deadline_ms),
            ));
            root.finish();
            ctx
        });
        let t1 = Instant::now();
        let result = pool.score_batch_traced(jobs, ctx);
        batch_ms.push(t1.elapsed().as_secs_f64() * 1e3);
        // Determinism gate: every task that ran must match the sequential
        // reference bit-for-bit; deadline-expired slots are skipped work
        // (never partial work) and are excluded from the comparison.
        for (idx, slot) in result.into_iter().enumerate() {
            match slot {
                Ok(scores) => {
                    completed_tasks += 1;
                    if scores != sequential[idx] {
                        return Err(CliError::Runtime(
                            "pool scores diverged from sequential scores".to_string(),
                        ));
                    }
                }
                Err(crate::Error::DeadlineExceeded) if deadline_ms > 0 => {}
                Err(e) => return Err(CliError::from(e)),
            }
        }
    }
    sampler_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(handle) = sampler {
        let _ = handle.join();
    }
    let sampler_samples = recorder.as_ref().map_or(0, |r| r.len());
    let journal_stats = journal.map(|(journal, thread)| {
        journal.close();
        thread.join();
        journal.stats()
    });
    let stats = pool.worker_stats();
    let executed_tasks: u64 = stats.iter().map(|s| s.executed).sum();
    let stolen_tasks: u64 = stats.iter().map(|s| s.stolen).sum();
    let expired_tasks = pool.deadline_expired();
    if deadline_ms == 0 && completed_tasks != (n_series * batches) as u64 {
        return Err(CliError::Runtime(format!(
            "pool completed {completed_tasks} of {} tasks",
            n_series * batches
        )));
    }

    // Histogram-derived per-task percentiles: where a batch's wall time
    // went — waiting in a worker's queue vs executing the scoring kernel.
    let queue_wait = obs.pool_queue_wait.snapshot();
    let execute = obs.pool_execute.snapshot();
    let ns_to_ms = |ns: u64| ns as f64 / 1e6;
    let (qw_p50, qw_p95, qw_p99) = (
        ns_to_ms(queue_wait.quantile(0.50)),
        ns_to_ms(queue_wait.quantile(0.95)),
        ns_to_ms(queue_wait.quantile(0.99)),
    );
    let (ex_p50, ex_p95, ex_p99) = (
        ns_to_ms(execute.quantile(0.50)),
        ns_to_ms(execute.quantile(0.95)),
        ns_to_ms(execute.quantile(0.99)),
    );

    let mut sorted = batch_ms.clone();
    sorted.sort_by(f64::total_cmp);
    let (p50, p95, p99) = (
        percentile_ms(&sorted, 0.50),
        percentile_ms(&sorted, 0.95),
        percentile_ms(&sorted, 0.99),
    );
    let median_batch_secs = p50 / 1e3;
    let pool_pps = total_points as f64 / median_batch_secs.max(1e-9);
    let seq_pps = total_points as f64 / seq_time.as_secs_f64().max(1e-9);
    let speedup = seq_time.as_secs_f64() / median_batch_secs.max(1e-9);

    if json {
        // One machine-readable line for BENCH_*.json trajectories in CI.
        // Plain format! keeps this crate JSON-free; every value is a
        // number or literal, so the output is always valid JSON.
        println!(
            "{{\"bench\":\"throughput\",\"workers\":{workers},\"series\":{n_series},\
             \"length\":{length},\"pattern_length\":{pattern_length},\
             \"query_length\":{query_length},\"batches\":{batches},\"skew\":{skew},\
             \"total_points\":{total_points},\
             \"sequential_ms\":{:.3},\"sequential_points_per_sec\":{:.0},\
             \"batch_p50_ms\":{p50:.3},\"batch_p95_ms\":{p95:.3},\"batch_p99_ms\":{p99:.3},\
             \"pool_points_per_sec\":{pool_pps:.0},\"speedup\":{speedup:.3},\
             \"executed_tasks\":{executed_tasks},\"stolen_tasks\":{stolen_tasks},\
             \"deadline_ms\":{deadline_ms},\"deadline_expired_tasks\":{expired_tasks},\
             \"completed_tasks\":{completed_tasks},\
             \"task_queue_wait_p50_ms\":{qw_p50:.3},\"task_queue_wait_p95_ms\":{qw_p95:.3},\
             \"task_queue_wait_p99_ms\":{qw_p99:.3},\"task_queue_wait_mean_ms\":{:.3},\
             \"task_execute_p50_ms\":{ex_p50:.3},\"task_execute_p95_ms\":{ex_p95:.3},\
             \"task_execute_p99_ms\":{ex_p99:.3},\"task_execute_mean_ms\":{:.3},\
             \"sampler_interval_ms\":{sample_interval_ms},\
             \"sampler_samples\":{sampler_samples},{}\
             \"deterministic\":true}}",
            seq_time.as_secs_f64() * 1e3,
            seq_pps,
            queue_wait.mean() / 1e6,
            execute.mean() / 1e6,
            journal_stats.as_ref().map_or_else(String::new, |s| {
                format!(
                    "\"journal_written\":{},\"journal_dropped\":{},\"journal_bytes\":{},\
                     \"journal_segments\":{},",
                    s.written, s.dropped, s.bytes, s.segments
                )
            }),
        );
        return Ok(());
    }

    let shape = if skew { " (skewed)" } else { "" };
    println!(
        "bench-throughput: {n_series} series{shape}, {total_points} points total, ℓ={pattern_length}, ℓq={query_length}, {batches} batches"
    );
    println!("sequential: {seq_time:.2?} ({seq_pps:>12.0} points/s)");
    println!(
        "pool ({workers} workers): p50 {p50:.1} ms, p95 {p95:.1} ms, p99 {p99:.1} ms per batch ({pool_pps:>12.0} points/s, {speedup:.2}x)"
    );
    println!("scheduler: {executed_tasks} tasks executed, {stolen_tasks} stolen");
    if deadline_ms > 0 {
        println!(
            "deadlines: {expired_tasks} of {} tasks expired unrun @ {deadline_ms} ms budget ({completed_tasks} completed)",
            n_series * batches
        );
    }
    println!(
        "per-task: queue wait p50 {qw_p50:.3} ms / p95 {qw_p95:.3} ms / p99 {qw_p99:.3} ms; \
         execute p50 {ex_p50:.3} ms / p95 {ex_p95:.3} ms / p99 {ex_p99:.3} ms"
    );
    if sample_interval_ms > 0 {
        println!(
            "flight recorder: {sampler_samples} samples @ {sample_interval_ms} ms while benching"
        );
    }
    if let Some(stats) = &journal_stats {
        println!(
            "journal: {} event(s) written across {} segment(s) ({} bytes), {} shed",
            stats.written, stats.segments, stats.bytes, stats.dropped
        );
    }
    if deadline_ms > 0 {
        println!("determinism: every completed task identical to sequential ✓ (expired slots skipped unrun)");
    } else {
        println!("determinism: pool output identical to sequential across all batches ✓");
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// eval
// ---------------------------------------------------------------------------

/// `s2g eval`: runs the accuracy gauntlet — S2G (frozen and adaptive) plus
/// the eight baselines over the labelled scenario registry.
///
/// `--json` prints one deterministic line per detector × scenario in the
/// `BENCH_ACCURACY.json` run-line schema (no timings, byte-identical across
/// runs of one seed); the default output is a human table per scenario.
/// `--check` additionally enforces the win conditions (S2G strictly tops
/// every baseline on paper-favorable scenarios; the adaptive session beats
/// the frozen model on drift scenarios) and fails with a runtime error
/// listing every violation.
fn cmd_eval(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(
        args,
        &["--seed", "--scenario", "--rev"],
        &["--fast", "--json", "--check", "--list"],
    )?;

    if args.has("--list") {
        for s in s2g_eval::scenario::registry() {
            println!(
                "{:<18} {}{}{}{}",
                s.id,
                s.description,
                if s.paper_favorable {
                    " [paper-favorable]"
                } else {
                    ""
                },
                if s.drift { " [drift]" } else { "" },
                if s.fast { " [fast]" } else { "" },
            );
        }
        return Ok(());
    }

    let seed = args.usize_flag("--seed", Some(42))? as u64;
    let scenarios: Vec<String> = args
        .get("--scenario")
        .map(|ids| {
            ids.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let config = s2g_eval::GauntletConfig {
        seed,
        fast: args.has("--fast"),
        scenarios,
        rev: args.get("--rev").unwrap_or("dev").to_string(),
    };

    let results = s2g_eval::run_gauntlet(&config).map_err(CliError::Usage)?;

    if args.has("--json") {
        print!("{}", s2g_eval::gauntlet::to_json_lines(&results, &config));
    } else {
        print!("{}", s2g_eval::gauntlet::render_table(&results));
    }

    if args.has("--check") {
        let violations = s2g_eval::gauntlet::validate(&results);
        if !violations.is_empty() {
            return Err(CliError::Runtime(format!(
                "win conditions violated:\n  {}",
                violations.join("\n  ")
            )));
        }
        if !args.has("--json") {
            println!("win conditions: all green ✓");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("s2g_cli_test_{}_{name}", std::process::id()));
        dir
    }

    fn write_sine(path: &std::path::Path, n: usize, burst_at: Option<usize>) {
        let mut values: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * i as f64 / 100.0).sin())
            .collect();
        if let Some(at) = burst_at {
            for (i, v) in values
                .iter_mut()
                .enumerate()
                .take((at + 150).min(n))
                .skip(at)
            {
                *v = (std::f64::consts::TAU * i as f64 / 25.0).sin();
            }
        }
        io::write_series(path, &TimeSeries::from(values)).unwrap();
    }

    #[test]
    fn unknown_subcommand_and_flags_are_usage_errors() {
        assert!(matches!(
            dispatch(&strs(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(dispatch(&strs(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            dispatch(&strs(&["fit", "--bogus", "1"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch(&strs(&["score", "--model"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn eval_lists_scenarios_and_rejects_unknown_ids() {
        assert!(dispatch(&strs(&["eval", "--list"])).is_ok());
        assert!(matches!(
            dispatch(&strs(&["eval", "--scenario", "no-such-scenario"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch(&strs(&["eval", "--seed", "forty-two"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn eval_runs_one_scenario_with_win_conditions_enforced() {
        // One paper-favorable scenario end-to-end through the CLI layer,
        // with --check promoting any win-condition violation to a failure.
        dispatch(&strs(&[
            "eval",
            "--scenario",
            "srw-clean",
            "--seed",
            "42",
            "--json",
            "--check",
        ]))
        .unwrap();
    }

    #[test]
    fn fit_then_score_and_stream_end_to_end() {
        let input = tmp("fleet_input.csv");
        let model_path = tmp("fleet_model.s2g");
        let scores_path = tmp("fleet_scores.csv");
        write_sine(&input, 4000, Some(2000));

        dispatch(&strs(&[
            "fit",
            "--input",
            input.to_str().unwrap(),
            "--output",
            model_path.to_str().unwrap(),
            "--pattern-length",
            "50",
        ]))
        .unwrap();

        dispatch(&strs(&[
            "score",
            "--model",
            model_path.to_str().unwrap(),
            "--query-length",
            "150",
            "--top-k",
            "1",
            "--scores-out",
            scores_path.to_str().unwrap(),
            input.to_str().unwrap(),
        ]))
        .unwrap();

        // The written profile must match the in-process fit+score exactly.
        let series = io::read_series(&input).unwrap();
        let model = Series2Graph::fit(&series, &S2gConfig::new(50)).unwrap();
        let expected = model.anomaly_scores(&series, 150).unwrap();
        let text = std::fs::read_to_string(&scores_path).unwrap();
        let written: Vec<f64> = text
            .lines()
            .skip(1)
            .map(|line| line.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(written.len(), expected.len());
        for (w, e) in written.iter().zip(&expected) {
            assert_eq!(
                w.to_bits(),
                e.to_bits(),
                "persisted scores must be bit-identical"
            );
        }

        dispatch(&strs(&[
            "stream",
            "--model",
            model_path.to_str().unwrap(),
            "--query-length",
            "150",
            "--chunk",
            "333",
            input.to_str().unwrap(),
        ]))
        .unwrap();

        for p in [&input, &model_path, &scores_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn score_rejects_scores_out_with_many_inputs() {
        let err = dispatch(&strs(&[
            "score",
            "--model",
            "m.s2g",
            "--query-length",
            "100",
            "--scores-out",
            "out.csv",
            "a.csv",
            "b.csv",
        ]));
        assert!(matches!(err, Err(CliError::Usage(_))));
    }

    #[test]
    fn bench_throughput_smoke() {
        dispatch(&strs(&[
            "bench-throughput",
            "--workers",
            "2",
            "--series",
            "3",
            "--length",
            "3000",
            "--pattern-length",
            "40",
            "--query-length",
            "120",
            "--batches",
            "3",
        ]))
        .unwrap();
        // The machine-readable variant must run too (stdout is asserted by
        // the cross-process CLI test).
        dispatch(&strs(&[
            "bench-throughput",
            "--workers",
            "2",
            "--series",
            "2",
            "--length",
            "2000",
            "--pattern-length",
            "40",
            "--query-length",
            "120",
            "--batches",
            "2",
            "--json",
        ]))
        .unwrap();
    }

    #[test]
    fn stream_adapt_round_trips_an_adapted_model() {
        let input = tmp("adapt_input.csv");
        let model_path = tmp("adapt_model.s2g");
        let adapted_path = tmp("adapt_out.s2g");
        write_sine(&input, 4000, None);

        dispatch(&strs(&[
            "fit",
            "--input",
            input.to_str().unwrap(),
            "--output",
            model_path.to_str().unwrap(),
            "--pattern-length",
            "50",
        ]))
        .unwrap();

        // --adapted-out without --adapt is a usage error.
        assert!(matches!(
            dispatch(&strs(&[
                "stream",
                "--model",
                model_path.to_str().unwrap(),
                "--query-length",
                "150",
                "--adapted-out",
                adapted_path.to_str().unwrap(),
                input.to_str().unwrap(),
            ])),
            Err(CliError::Usage(_))
        ));

        dispatch(&strs(&[
            "stream",
            "--model",
            model_path.to_str().unwrap(),
            "--query-length",
            "150",
            "--adapt",
            "--adapt-lambda",
            "0.05",
            "--adapted-out",
            adapted_path.to_str().unwrap(),
            input.to_str().unwrap(),
        ]))
        .unwrap();

        // The adapted model reloads with lineage pointing at the parent.
        let parent = codec::load_model(&model_path).unwrap();
        let adapted = codec::load_model(&adapted_path).unwrap();
        let lineage = adapted.lineage().expect("adapted model carries lineage");
        assert_eq!(lineage.parent_checksum, codec::model_checksum(&parent));
        assert!(lineage.update_count > 0);
        assert_eq!(lineage.decay_lambda, 0.05);

        for p in [&input, &model_path, &adapted_path] {
            std::fs::remove_file(p).ok();
        }
    }
}
