//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate vendors the
//! slice of the criterion API the bench harnesses use: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a simple
//! wall-clock mean over a small, time-budgeted number of iterations — good
//! enough for coarse regression spotting, with none of criterion's
//! statistical machinery.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<D: Display>(name: &str, parameter: D) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    last_mean: Duration,
}

impl Bencher {
    /// Times `routine`, running it a warm-up pass plus up to `sample_size`
    /// measured iterations bounded by a ~250 ms budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let budget = Duration::from_millis(250);
        let started = Instant::now();
        let mut iters = 0u32;
        let mut total = Duration::ZERO;
        while (iters as usize) < self.sample_size && started.elapsed() < budget {
            let t0 = Instant::now();
            black_box(routine());
            total += t0.elapsed();
            iters += 1;
        }
        self.last_mean = if iters == 0 {
            Duration::ZERO
        } else {
            total / iters
        };
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            last_mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!(
            "bench {:<60} {:>12.3?}",
            format!("{}/{}", self.name, label),
            bencher.last_mean
        );
    }

    /// Benchmarks `f` under the given id.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label, f);
        self
    }

    /// Benchmarks `f`, passing `input` through to the closure.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &In),
    {
        let id = id.into();
        self.run(&id.label, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (no-op in the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: 10,
            last_mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!("bench {name:<60} {:>12.3?}", bencher.last_mean);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Finalises reporting (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran >= 1);
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(42), &42usize, |b, &input| {
            b.iter(|| {
                seen = input;
                black_box(seen)
            })
        });
        group.finish();
        assert_eq!(seen, 42);
    }
}
