//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate vendors the
//! subset of the `proptest` API the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, `prop::collection::vec`, the [`proptest!`] macro and the
//! `prop_assert*` / `prop_assume!` macros, plus [`ProptestConfig`].
//!
//! Semantics: each test case draws fresh random inputs from a deterministic
//! per-test generator and runs the body. Failing cases report the case number
//! and assertion message. There is **no shrinking** — a deliberate
//! simplification; failures print the case seed so runs are reproducible.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::*;

    /// Deterministic random source for one generated test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Creates the generator for a named test; the stream depends only on
        /// the test name, so runs are reproducible.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.gen::<u64>()
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.inner.gen::<f64>()
        }

        /// Uniform integer draw in `[lo, hi)`.
        pub fn index(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "empty range");
            lo + self.inner.gen_range(0..(hi - lo))
        }
    }

    /// Outcome of one generated case body (Ok = pass/skip, Err = failure).
    pub type CaseResult = Result<(), String>;
}

use test_runner::TestRng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast while still
        // exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy `f`
    /// builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Boxes the strategy (API-compat helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.base.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.index(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                rng.index(lo as u64, hi as u64 + 1) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.index(0, span) as i128) as $t
            }
        }
    )*};
}

impl_signed_strategy!(i64, i32, i16, i8, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f64, f32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Strategy namespace (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Size specification for [`vec()`]: a fixed size or a half-open
        /// range.
        pub trait SizeRange {
            /// Draws a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for core::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                rng.index(self.start as u64, self.end as u64) as usize
            }
        }

        impl SizeRange for core::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.index(*self.start() as u64, *self.end() as u64 + 1) as usize
            }
        }

        /// Strategy generating `Vec`s of values from an element strategy.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length is drawn from `len` (a `usize` or a range).
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

/// The common imports for property tests.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                l
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            // No shrinking/resampling in the shim: an unsatisfied assumption
            // simply passes the case.
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(-1.0f64..1.0, 1..50)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(::core::stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: $crate::test_runner::CaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(__msg) = __outcome {
                    ::core::panic!(
                        "proptest `{}` failed at case {}/{}:\n{}",
                        ::core::stringify!($name),
                        __case + 1,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, f in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0.0f64..1.0, 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn flat_map_links_dimensions(
            m in (1usize..5, 1usize..5).prop_flat_map(|(r, c)| {
                prop::collection::vec(0.0f64..1.0, r * c).prop_map(move |data| (r, c, data))
            })
        ) {
            let (r, c, data) = m;
            prop_assert_eq!(data.len(), r * c);
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failures_panic_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]

            #[allow(dead_code)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
