//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of the `rand 0.8` API that the codebase actually uses:
//! [`Rng::gen`] / [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`]. The generator is a deterministic xoshiro256++ seeded via
//! SplitMix64 — statistically solid for tests, dataset synthesis and
//! randomized sketching, though the exact streams differ from upstream
//! `rand`'s ChaCha-based `StdRng`.

#![forbid(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from the given bit source.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`
    /// (uniform `[0, 1)` for floats, uniform bits for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let i = rng.gen_range(10usize..20);
            assert!((10..20).contains(&i));
            let j = rng.gen_range(0usize..=5);
            assert!(j <= 5);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let f = rng.gen_range(0.0f64..1.0);
            if f < 0.1 {
                lo_seen = true;
            }
            if f > 0.9 {
                hi_seen = true;
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
