//! Principal component analysis used for the 3-dimensional reduction of the
//! subsequence projection matrix `Proj(T, ℓ, λ)`.

use crate::eigen::symmetric_eigen;
use crate::error::{Error, Result};
use crate::matrix::DMatrix;
use crate::svd::{randomized_svd, RandomizedSvdOptions};

/// Which solver computes the principal directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PcaSolver {
    /// Exact eigen-decomposition of the `d × d` covariance matrix. Best when
    /// `d = ℓ − λ` is small (the common case, tens of columns).
    #[default]
    Covariance,
    /// Randomized truncated SVD (Halko et al.), matching the method cited by
    /// the paper; preferable when `d` grows to hundreds of columns.
    RandomizedSvd {
        /// Extra sketch columns beyond the requested rank.
        oversample: usize,
        /// Number of power iterations.
        power_iterations: usize,
        /// Random seed for the Gaussian test matrix.
        seed: u64,
    },
}

/// A fitted PCA model: column means plus the top-`k` principal directions.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `d × k` matrix whose columns are the principal directions.
    components: DMatrix,
    explained_variance: Vec<f64>,
    total_variance: f64,
}

impl Pca {
    /// Fits a PCA with `k` components on the rows of `data` using the default
    /// (covariance) solver.
    pub fn fit(data: &DMatrix, k: usize) -> Result<Self> {
        Self::fit_with(data, k, PcaSolver::Covariance)
    }

    /// Fits a PCA with `k` components using the requested solver.
    ///
    /// # Errors
    /// * [`Error::EmptyMatrix`] for empty input.
    /// * [`Error::TooManyComponents`] when `k > min(n, d)`.
    pub fn fit_with(data: &DMatrix, k: usize, solver: PcaSolver) -> Result<Self> {
        let (n, d) = data.shape();
        if n == 0 || d == 0 {
            return Err(Error::EmptyMatrix);
        }
        if k == 0 || k > n.min(d) {
            return Err(Error::TooManyComponents {
                requested: k,
                available: n.min(d),
            });
        }

        let (centered, mean) = data.centered();
        let denom = (n.max(2) - 1) as f64;

        match solver {
            PcaSolver::Covariance => {
                let mut cov = centered.gram();
                cov.scale_in_place(1.0 / denom);
                let eig = symmetric_eigen(&cov)?;
                let total_variance: f64 = eig.eigenvalues.iter().map(|v| v.max(0.0)).sum();
                let mut components = DMatrix::zeros(d, k);
                let mut explained = Vec::with_capacity(k);
                for c in 0..k {
                    explained.push(eig.eigenvalues[c].max(0.0));
                    for r in 0..d {
                        components.set(r, c, eig.eigenvectors.get(r, c));
                    }
                }
                Ok(Self {
                    mean,
                    components,
                    explained_variance: explained,
                    total_variance,
                })
            }
            PcaSolver::RandomizedSvd {
                oversample,
                power_iterations,
                seed,
            } => {
                let svd = randomized_svd(
                    &centered,
                    RandomizedSvdOptions {
                        rank: k,
                        oversample,
                        power_iterations,
                        seed,
                    },
                )?;
                let explained: Vec<f64> = svd
                    .singular_values
                    .iter()
                    .map(|s| (s * s) / denom)
                    .collect();
                // Total variance from the centred data directly (cheap single pass).
                let total_variance = centered.as_slice().iter().map(|x| x * x).sum::<f64>() / denom;
                Ok(Self {
                    mean,
                    components: svd.v,
                    explained_variance: explained,
                    total_variance,
                })
            }
        }
    }

    /// Reassembles a fitted PCA from its raw parts, as produced by
    /// [`Pca::mean`], [`Pca::components`], [`Pca::explained_variance`] and
    /// [`Pca::total_variance`]. Used by model persistence.
    ///
    /// # Errors
    /// * [`Error::EmptyMatrix`] when `components` has no rows or columns.
    /// * [`Error::ShapeMismatch`] when `mean` or `explained_variance` does not
    ///   match the component matrix shape.
    pub fn from_parts(
        mean: Vec<f64>,
        components: DMatrix,
        explained_variance: Vec<f64>,
        total_variance: f64,
    ) -> Result<Self> {
        let (d, k) = components.shape();
        if d == 0 || k == 0 {
            return Err(Error::EmptyMatrix);
        }
        if mean.len() != d {
            return Err(Error::ShapeMismatch {
                op: "pca_from_parts_mean",
                left: (1, mean.len()),
                right: (d, k),
            });
        }
        if explained_variance.len() != k {
            return Err(Error::ShapeMismatch {
                op: "pca_from_parts_variance",
                left: (1, explained_variance.len()),
                right: (d, k),
            });
        }
        Ok(Self {
            mean,
            components,
            explained_variance,
            total_variance,
        })
    }

    /// Total variance of the training data (denominator of
    /// [`Pca::explained_variance_ratio`]). Exposed for model persistence.
    pub fn total_variance(&self) -> f64 {
        self.total_variance
    }

    /// Number of components kept.
    pub fn n_components(&self) -> usize {
        self.components.ncols()
    }

    /// Input dimensionality the model was fitted on.
    pub fn input_dim(&self) -> usize {
        self.components.nrows()
    }

    /// Column means subtracted before projection.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The principal directions as a `d × k` matrix (columns are directions).
    pub fn components(&self) -> &DMatrix {
        &self.components
    }

    /// Variance captured by each kept component.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of the total variance captured by the kept components
    /// (the paper reports ≈95% on average for 3 components over its corpus).
    pub fn explained_variance_ratio(&self) -> f64 {
        if self.total_variance <= 0.0 {
            return 0.0;
        }
        self.explained_variance.iter().sum::<f64>() / self.total_variance
    }

    /// Projects a single row vector into the component space.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] when `x.len()` differs from the fitted dimensionality.
    pub fn transform_row(&self, x: &[f64]) -> Result<Vec<f64>> {
        let d = self.components.nrows();
        if x.len() != d {
            return Err(Error::ShapeMismatch {
                op: "pca_transform",
                left: (1, x.len()),
                right: (d, self.components.ncols()),
            });
        }
        let k = self.components.ncols();
        let mut out = vec![0.0; k];
        for (j, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (i, (xi, mi)) in x.iter().zip(&self.mean).enumerate() {
                acc += (xi - mi) * self.components.get(i, j);
            }
            *o = acc;
        }
        Ok(out)
    }

    /// Projects every row of `data` into the component space, returning an
    /// `n × k` matrix.
    pub fn transform(&self, data: &DMatrix) -> Result<DMatrix> {
        let (n, d) = data.shape();
        if d != self.components.nrows() {
            return Err(Error::ShapeMismatch {
                op: "pca_transform",
                left: (n, d),
                right: self.components.shape(),
            });
        }
        let k = self.components.ncols();
        let mut out = DMatrix::zeros(n, k);
        for r in 0..n {
            let row = data.row(r);
            let out_row = out.row_mut(r);
            for (j, o) in out_row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (i, (xi, mi)) in row.iter().zip(&self.mean).enumerate() {
                    acc += (xi - mi) * self.components.get(i, j);
                }
                *o = acc;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates rows living (mostly) on a 2-D plane inside R^5.
    fn planar_data(n: usize) -> DMatrix {
        let d1 = [2.0, 0.0, 1.0, 0.0, 0.0];
        let d2 = [0.0, 1.0, 0.0, 1.0, 0.0];
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i as f64 * 0.17).sin() * 8.0;
            let b = (i as f64 * 0.05).cos() * 3.0;
            let noise = (i as f64 * 13.37).sin() * 1e-3;
            let row: Vec<f64> = (0..5)
                .map(|j| a * d1[j] + b * d2[j] + noise + 5.0)
                .collect();
            rows.push(row);
        }
        DMatrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn covariance_pca_captures_planar_variance() {
        let data = planar_data(400);
        let pca = Pca::fit(&data, 2).unwrap();
        assert_eq!(pca.n_components(), 2);
        assert!(pca.explained_variance_ratio() > 0.999);
        assert!(pca.explained_variance()[0] >= pca.explained_variance()[1]);
    }

    #[test]
    fn randomized_pca_agrees_with_covariance_pca() {
        let data = planar_data(400);
        let exact = Pca::fit(&data, 2).unwrap();
        let rand = Pca::fit_with(
            &data,
            2,
            PcaSolver::RandomizedSvd {
                oversample: 5,
                power_iterations: 3,
                seed: 1,
            },
        )
        .unwrap();
        // The projected coordinates must agree up to a per-component sign flip.
        let pe = exact.transform(&data).unwrap();
        let pr = rand.transform(&data).unwrap();
        for c in 0..2 {
            let dot: f64 = (0..data.nrows()).map(|r| pe.get(r, c) * pr.get(r, c)).sum();
            let ne: f64 = (0..data.nrows())
                .map(|r| pe.get(r, c).powi(2))
                .sum::<f64>()
                .sqrt();
            let nr: f64 = (0..data.nrows())
                .map(|r| pr.get(r, c).powi(2))
                .sum::<f64>()
                .sqrt();
            let corr = (dot / (ne * nr)).abs();
            assert!(corr > 0.999, "component {c} correlation {corr}");
        }
    }

    #[test]
    fn transform_row_matches_transform() {
        let data = planar_data(100);
        let pca = Pca::fit(&data, 3).unwrap();
        let all = pca.transform(&data).unwrap();
        for r in [0usize, 17, 99] {
            let row = pca.transform_row(data.row(r)).unwrap();
            for (c, v) in row.iter().enumerate().take(3) {
                assert!((v - all.get(r, c)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn projected_data_is_centred() {
        let data = planar_data(200);
        let pca = Pca::fit(&data, 2).unwrap();
        let proj = pca.transform(&data).unwrap();
        for c in 0..2 {
            let mean: f64 = proj.col(c).iter().sum::<f64>() / proj.nrows() as f64;
            assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_invalid_component_counts() {
        let data = planar_data(10);
        assert!(Pca::fit(&data, 0).is_err());
        assert!(Pca::fit(&data, 6).is_err());
        assert!(Pca::fit(&DMatrix::zeros(0, 0), 1).is_err());
    }

    #[test]
    fn transform_validates_dimension() {
        let data = planar_data(50);
        let pca = Pca::fit(&data, 2).unwrap();
        assert!(pca.transform_row(&[1.0, 2.0]).is_err());
        assert!(pca.transform(&DMatrix::zeros(3, 4)).is_err());
    }

    #[test]
    fn component_directions_are_unit_norm() {
        let data = planar_data(150);
        let pca = Pca::fit(&data, 3).unwrap();
        for c in 0..3 {
            let n: f64 = pca
                .components()
                .col(c)
                .iter()
                .map(|x| x * x)
                .sum::<f64>()
                .sqrt();
            assert!((n - 1.0).abs() < 1e-9, "component {c} norm {n}");
        }
    }
}
