//! Principal component analysis used for the 3-dimensional reduction of the
//! subsequence projection matrix `Proj(T, ℓ, λ)`.

use crate::eigen::symmetric_eigen;
use crate::error::{Error, Result};
use crate::matrix::DMatrix;
use crate::svd::{randomized_svd, RandomizedSvdOptions};

/// Which solver computes the principal directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PcaSolver {
    /// Exact eigen-decomposition of the `d × d` covariance matrix. Best when
    /// `d = ℓ − λ` is small (the common case, tens of columns).
    #[default]
    Covariance,
    /// Randomized truncated SVD (Halko et al.), matching the method cited by
    /// the paper; preferable when `d` grows to hundreds of columns.
    RandomizedSvd {
        /// Extra sketch columns beyond the requested rank.
        oversample: usize,
        /// Number of power iterations.
        power_iterations: usize,
        /// Random seed for the Gaussian test matrix.
        seed: u64,
    },
}

/// A fitted PCA model: column means plus the top-`k` principal directions.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `d × k` matrix whose columns are the principal directions.
    components: DMatrix,
    explained_variance: Vec<f64>,
    total_variance: f64,
}

impl Pca {
    /// Fits a PCA with `k` components on the rows of `data` using the default
    /// (covariance) solver.
    pub fn fit(data: &DMatrix, k: usize) -> Result<Self> {
        Self::fit_with(data, k, PcaSolver::Covariance)
    }

    /// Fits a PCA with `k` components using the requested solver.
    ///
    /// # Errors
    /// * [`Error::EmptyMatrix`] for empty input.
    /// * [`Error::TooManyComponents`] when `k > min(n, d)`.
    pub fn fit_with(data: &DMatrix, k: usize, solver: PcaSolver) -> Result<Self> {
        let (n, d) = data.shape();
        if n == 0 || d == 0 {
            return Err(Error::EmptyMatrix);
        }
        if k == 0 || k > n.min(d) {
            return Err(Error::TooManyComponents {
                requested: k,
                available: n.min(d),
            });
        }

        let (centered, mean) = data.centered();
        let denom = (n.max(2) - 1) as f64;

        match solver {
            PcaSolver::Covariance => {
                let mut cov = centered.gram();
                cov.scale_in_place(1.0 / denom);
                Self::from_covariance(mean, &cov, k)
            }
            PcaSolver::RandomizedSvd {
                oversample,
                power_iterations,
                seed,
            } => {
                let svd = randomized_svd(
                    &centered,
                    RandomizedSvdOptions {
                        rank: k,
                        oversample,
                        power_iterations,
                        seed,
                    },
                )?;
                let explained: Vec<f64> = svd
                    .singular_values
                    .iter()
                    .map(|s| (s * s) / denom)
                    .collect();
                // Total variance from the centred data directly (cheap single pass).
                let total_variance = centered.as_slice().iter().map(|x| x * x).sum::<f64>() / denom;
                Ok(Self {
                    mean,
                    components: svd.v,
                    explained_variance: explained,
                    total_variance,
                })
            }
        }
    }

    /// Fits a covariance-solver PCA on the `n` overlapping windows
    /// `windows[i .. i + d]`, `i ∈ [0, n)`, of a flat buffer — the shape of
    /// the subsequence projection matrix `Proj(T, ℓ, λ)`, whose row `i` is a
    /// stride-1 slice of the series' rolling-sum vector.
    ///
    /// This is the **materialization-free** fit path: instead of copying the
    /// windows into an `n × d` matrix (`O(n·d)` memory — hundreds of MB for
    /// million-point series), the column means and the `d × d` Gram matrix
    /// are accumulated directly from the overlapping slices, so peak extra
    /// memory is `O(d²)`. Every accumulation runs in exactly the summation
    /// order of [`DMatrix::column_means`] / [`DMatrix::gram`] on the
    /// materialized matrix (including the skip of zero entries), so the
    /// fitted model is **bit-identical** to
    /// `Pca::fit_with(&materialized, k, PcaSolver::Covariance)`.
    ///
    /// # Errors
    /// * [`Error::EmptyMatrix`] when `n == 0` or `d == 0`.
    /// * [`Error::ShapeMismatch`] when `windows` is shorter than the
    ///   `n + d − 1` values the windows span.
    /// * [`Error::TooManyComponents`] when `k == 0` or `k > min(n, d)`.
    pub fn fit_sliding_covariance(windows: &[f64], n: usize, d: usize, k: usize) -> Result<Self> {
        if n == 0 || d == 0 {
            return Err(Error::EmptyMatrix);
        }
        if windows.len() + 1 < n + d {
            return Err(Error::ShapeMismatch {
                op: "pca_fit_sliding",
                left: (1, windows.len()),
                right: (n, d),
            });
        }
        if k == 0 || k > n.min(d) {
            return Err(Error::TooManyComponents {
                requested: k,
                available: n.min(d),
            });
        }

        // Column means, in DMatrix::column_means order (rows outer, columns
        // inner, one division at the end).
        let mut mean = vec![0.0; d];
        for r in 0..n {
            let row = &windows[r..r + d];
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        let rows = n.max(1) as f64;
        for m in &mut mean {
            *m /= rows;
        }

        // Gram matrix of the centred rows, in DMatrix::gram order. One
        // scratch row of length d replaces the n × d centred matrix; the
        // `ri == 0.0` skip is kept because adding `0.0 * rj` can still flip
        // a `-0.0` accumulator to `+0.0` — same arithmetic, same bits.
        let mut cov = DMatrix::zeros(d, d);
        let mut centered = vec![0.0; d];
        for r in 0..n {
            for (c, v) in centered.iter_mut().enumerate() {
                *v = windows[r + c] - mean[c];
            }
            for i in 0..d {
                let ri = centered[i];
                if ri == 0.0 {
                    continue;
                }
                let out_row = cov.row_mut(i);
                for (j, &rj) in centered.iter().enumerate() {
                    out_row[j] += ri * rj;
                }
            }
        }
        let denom = (n.max(2) - 1) as f64;
        cov.scale_in_place(1.0 / denom);
        Self::from_covariance(mean, &cov, k)
    }

    /// Shared tail of the covariance solvers: eigen-decomposes the already
    /// scaled covariance matrix and keeps the top-`k` directions.
    fn from_covariance(mean: Vec<f64>, cov: &DMatrix, k: usize) -> Result<Self> {
        let d = cov.nrows();
        let eig = symmetric_eigen(cov)?;
        let total_variance: f64 = eig.eigenvalues.iter().map(|v| v.max(0.0)).sum();
        let mut components = DMatrix::zeros(d, k);
        let mut explained = Vec::with_capacity(k);
        for c in 0..k {
            explained.push(eig.eigenvalues[c].max(0.0));
            for r in 0..d {
                components.set(r, c, eig.eigenvectors.get(r, c));
            }
        }
        Ok(Self {
            mean,
            components,
            explained_variance: explained,
            total_variance,
        })
    }

    /// Reassembles a fitted PCA from its raw parts, as produced by
    /// [`Pca::mean`], [`Pca::components`], [`Pca::explained_variance`] and
    /// [`Pca::total_variance`]. Used by model persistence.
    ///
    /// # Errors
    /// * [`Error::EmptyMatrix`] when `components` has no rows or columns.
    /// * [`Error::ShapeMismatch`] when `mean` or `explained_variance` does not
    ///   match the component matrix shape.
    pub fn from_parts(
        mean: Vec<f64>,
        components: DMatrix,
        explained_variance: Vec<f64>,
        total_variance: f64,
    ) -> Result<Self> {
        let (d, k) = components.shape();
        if d == 0 || k == 0 {
            return Err(Error::EmptyMatrix);
        }
        if mean.len() != d {
            return Err(Error::ShapeMismatch {
                op: "pca_from_parts_mean",
                left: (1, mean.len()),
                right: (d, k),
            });
        }
        if explained_variance.len() != k {
            return Err(Error::ShapeMismatch {
                op: "pca_from_parts_variance",
                left: (1, explained_variance.len()),
                right: (d, k),
            });
        }
        Ok(Self {
            mean,
            components,
            explained_variance,
            total_variance,
        })
    }

    /// Total variance of the training data (denominator of
    /// [`Pca::explained_variance_ratio`]). Exposed for model persistence.
    pub fn total_variance(&self) -> f64 {
        self.total_variance
    }

    /// Number of components kept.
    pub fn n_components(&self) -> usize {
        self.components.ncols()
    }

    /// Input dimensionality the model was fitted on.
    pub fn input_dim(&self) -> usize {
        self.components.nrows()
    }

    /// Column means subtracted before projection.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The principal directions as a `d × k` matrix (columns are directions).
    pub fn components(&self) -> &DMatrix {
        &self.components
    }

    /// Variance captured by each kept component.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of the total variance captured by the kept components
    /// (the paper reports ≈95% on average for 3 components over its corpus).
    pub fn explained_variance_ratio(&self) -> f64 {
        if self.total_variance <= 0.0 {
            return 0.0;
        }
        self.explained_variance.iter().sum::<f64>() / self.total_variance
    }

    /// Projects a single row vector into the component space.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] when `x.len()` differs from the fitted dimensionality.
    pub fn transform_row(&self, x: &[f64]) -> Result<Vec<f64>> {
        let d = self.components.nrows();
        if x.len() != d {
            return Err(Error::ShapeMismatch {
                op: "pca_transform",
                left: (1, x.len()),
                right: (d, self.components.ncols()),
            });
        }
        let k = self.components.ncols();
        let mut out = vec![0.0; k];
        for (j, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (i, (xi, mi)) in x.iter().zip(&self.mean).enumerate() {
                acc += (xi - mi) * self.components.get(i, j);
            }
            *o = acc;
        }
        Ok(out)
    }

    /// Projects every row of `data` into the component space, returning an
    /// `n × k` matrix.
    pub fn transform(&self, data: &DMatrix) -> Result<DMatrix> {
        let (n, d) = data.shape();
        if d != self.components.nrows() {
            return Err(Error::ShapeMismatch {
                op: "pca_transform",
                left: (n, d),
                right: self.components.shape(),
            });
        }
        let k = self.components.ncols();
        let mut out = DMatrix::zeros(n, k);
        for r in 0..n {
            let row = data.row(r);
            let out_row = out.row_mut(r);
            for (j, o) in out_row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (i, (xi, mi)) in row.iter().zip(&self.mean).enumerate() {
                    acc += (xi - mi) * self.components.get(i, j);
                }
                *o = acc;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates rows living (mostly) on a 2-D plane inside R^5.
    fn planar_data(n: usize) -> DMatrix {
        let d1 = [2.0, 0.0, 1.0, 0.0, 0.0];
        let d2 = [0.0, 1.0, 0.0, 1.0, 0.0];
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i as f64 * 0.17).sin() * 8.0;
            let b = (i as f64 * 0.05).cos() * 3.0;
            let noise = (i as f64 * 13.37).sin() * 1e-3;
            let row: Vec<f64> = (0..5)
                .map(|j| a * d1[j] + b * d2[j] + noise + 5.0)
                .collect();
            rows.push(row);
        }
        DMatrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn covariance_pca_captures_planar_variance() {
        let data = planar_data(400);
        let pca = Pca::fit(&data, 2).unwrap();
        assert_eq!(pca.n_components(), 2);
        assert!(pca.explained_variance_ratio() > 0.999);
        assert!(pca.explained_variance()[0] >= pca.explained_variance()[1]);
    }

    #[test]
    fn randomized_pca_agrees_with_covariance_pca() {
        let data = planar_data(400);
        let exact = Pca::fit(&data, 2).unwrap();
        let rand = Pca::fit_with(
            &data,
            2,
            PcaSolver::RandomizedSvd {
                oversample: 5,
                power_iterations: 3,
                seed: 1,
            },
        )
        .unwrap();
        // The projected coordinates must agree up to a per-component sign flip.
        let pe = exact.transform(&data).unwrap();
        let pr = rand.transform(&data).unwrap();
        for c in 0..2 {
            let dot: f64 = (0..data.nrows()).map(|r| pe.get(r, c) * pr.get(r, c)).sum();
            let ne: f64 = (0..data.nrows())
                .map(|r| pe.get(r, c).powi(2))
                .sum::<f64>()
                .sqrt();
            let nr: f64 = (0..data.nrows())
                .map(|r| pr.get(r, c).powi(2))
                .sum::<f64>()
                .sqrt();
            let corr = (dot / (ne * nr)).abs();
            assert!(corr > 0.999, "component {c} correlation {corr}");
        }
    }

    #[test]
    fn transform_row_matches_transform() {
        let data = planar_data(100);
        let pca = Pca::fit(&data, 3).unwrap();
        let all = pca.transform(&data).unwrap();
        for r in [0usize, 17, 99] {
            let row = pca.transform_row(data.row(r)).unwrap();
            for (c, v) in row.iter().enumerate().take(3) {
                assert!((v - all.get(r, c)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn projected_data_is_centred() {
        let data = planar_data(200);
        let pca = Pca::fit(&data, 2).unwrap();
        let proj = pca.transform(&data).unwrap();
        for c in 0..2 {
            let mean: f64 = proj.col(c).iter().sum::<f64>() / proj.nrows() as f64;
            assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn sliding_covariance_is_bit_identical_to_materialized() {
        // A buffer with noisy low bits, cut into stride-1 overlapping
        // windows exactly like the subsequence projection matrix.
        let buffer: Vec<f64> = (0..300)
            .map(|i| (i as f64 * 0.37).sin() * 3.0 + (i as f64 * 0.011).cos() + 0.1)
            .collect();
        let d = 40;
        let n = buffer.len() - d + 1;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| buffer[i..i + d].to_vec()).collect();
        let materialized = DMatrix::from_rows(&rows).unwrap();

        let via_matrix = Pca::fit(&materialized, 3).unwrap();
        let via_slices = Pca::fit_sliding_covariance(&buffer, n, d, 3).unwrap();

        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(via_matrix.mean()), bits(via_slices.mean()));
        assert_eq!(
            bits(via_matrix.components().as_slice()),
            bits(via_slices.components().as_slice())
        );
        assert_eq!(
            bits(via_matrix.explained_variance()),
            bits(via_slices.explained_variance())
        );
        assert_eq!(
            via_matrix.total_variance().to_bits(),
            via_slices.total_variance().to_bits()
        );
        // And the projections agree bit-for-bit too.
        for i in [0usize, 7, n - 1] {
            let a = via_matrix.transform_row(&buffer[i..i + d]).unwrap();
            let b = via_slices.transform_row(&buffer[i..i + d]).unwrap();
            assert_eq!(bits(&a), bits(&b));
        }
    }

    #[test]
    fn sliding_covariance_validates_inputs() {
        let buffer = vec![1.0; 20];
        assert!(Pca::fit_sliding_covariance(&buffer, 0, 5, 1).is_err());
        assert!(Pca::fit_sliding_covariance(&buffer, 5, 0, 1).is_err());
        // 10 windows of width 12 need 21 values; 20 is one short.
        assert!(Pca::fit_sliding_covariance(&buffer, 10, 12, 2).is_err());
        assert!(Pca::fit_sliding_covariance(&buffer, 10, 5, 0).is_err());
        assert!(Pca::fit_sliding_covariance(&buffer, 10, 5, 6).is_err());
        assert!(Pca::fit_sliding_covariance(&buffer, 16, 5, 3).is_ok());
    }

    #[test]
    fn rejects_invalid_component_counts() {
        let data = planar_data(10);
        assert!(Pca::fit(&data, 0).is_err());
        assert!(Pca::fit(&data, 6).is_err());
        assert!(Pca::fit(&DMatrix::zeros(0, 0), 1).is_err());
    }

    #[test]
    fn transform_validates_dimension() {
        let data = planar_data(50);
        let pca = Pca::fit(&data, 2).unwrap();
        assert!(pca.transform_row(&[1.0, 2.0]).is_err());
        assert!(pca.transform(&DMatrix::zeros(3, 4)).is_err());
    }

    #[test]
    fn component_directions_are_unit_norm() {
        let data = planar_data(150);
        let pca = Pca::fit(&data, 3).unwrap();
        for c in 0..3 {
            let n: f64 = pca
                .components()
                .col(c)
                .iter()
                .map(|x| x * x)
                .sum::<f64>()
                .sqrt();
            assert!((n - 1.0).abs() < 1e-9, "component {c} norm {n}");
        }
    }
}
