//! Symmetric eigen-decomposition via the cyclic Jacobi method.
//!
//! The matrices decomposed here are small (the Gram matrices of the embedding
//! are `(ℓ−λ)×(ℓ−λ)` for the exact PCA path and `(k+p)×(k+p)` for the
//! randomized path, with `k+p ≈ 10`), so the robust and simple Jacobi
//! rotation scheme is an appropriate choice.

use crate::error::{Error, Result};
use crate::matrix::DMatrix;

/// Result of a symmetric eigen-decomposition: `A = V · diag(λ) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues sorted in decreasing order.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors as matrix columns, in the same order as `eigenvalues`.
    pub eigenvectors: DMatrix,
}

/// Computes the eigen-decomposition of a symmetric matrix with the cyclic
/// Jacobi method.
///
/// The input is assumed symmetric; only its lower/upper consistency up to
/// floating point noise matters (the algorithm symmetrises implicitly by
/// operating on both sides). Eigenvalues are returned in decreasing order.
///
/// # Errors
/// * [`Error::ShapeMismatch`] when the matrix is not square.
/// * [`Error::EmptyMatrix`] when the matrix is empty.
/// * [`Error::NoConvergence`] when off-diagonal mass does not vanish within
///   the sweep limit (does not happen for well-formed symmetric input).
pub fn symmetric_eigen(matrix: &DMatrix) -> Result<SymmetricEigen> {
    let (n, m) = matrix.shape();
    if n == 0 || m == 0 {
        return Err(Error::EmptyMatrix);
    }
    if n != m {
        return Err(Error::ShapeMismatch {
            op: "symmetric_eigen",
            left: (n, m),
            right: (n, n),
        });
    }

    let mut a = matrix.clone();
    let mut v = DMatrix::identity(n);

    const MAX_SWEEPS: usize = 100;
    let tol = 1e-14 * a.frobenius_norm().max(1.0);

    for _sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&a);
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                // Compute the Jacobi rotation that annihilates a[p][q].
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation to A on both sides: A <- Jᵀ A J.
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
                // Accumulate eigenvectors: V <- V J.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    if off_diagonal_norm(&a) > tol * 1e3 {
        return Err(Error::NoConvergence("Jacobi eigen-decomposition"));
    }

    // Extract eigenvalues and sort them (with their vectors) in decreasing order.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a.get(i, i), i)).collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));

    let eigenvalues: Vec<f64> = pairs.iter().map(|(val, _)| *val).collect();
    let mut eigenvectors = DMatrix::zeros(n, n);
    for (new_col, (_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            eigenvectors.set(r, new_col, v.get(r, *old_col));
        }
    }

    Ok(SymmetricEigen {
        eigenvalues,
        eigenvectors,
    })
}

fn off_diagonal_norm(a: &DMatrix) -> f64 {
    let n = a.nrows();
    let mut acc = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let x = a.get(i, j);
                acc += x * x;
            }
        }
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let m = DMatrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&m).unwrap();
        assert!(approx(e.eigenvalues[0], 3.0, 1e-10));
        assert!(approx(e.eigenvalues[1], 2.0, 1e-10));
        assert!(approx(e.eigenvalues[2], 1.0, 1e-10));
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let m = DMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = symmetric_eigen(&m).unwrap();
        assert!(approx(e.eigenvalues[0], 3.0, 1e-10));
        assert!(approx(e.eigenvalues[1], 1.0, 1e-10));
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.eigenvectors.col(0);
        assert!(approx(v0[0].abs(), 1.0 / 2f64.sqrt(), 1e-9));
        assert!(approx(v0[1].abs(), 1.0 / 2f64.sqrt(), 1e-9));
    }

    #[test]
    fn reconstruction_holds() {
        let m = DMatrix::from_rows(&[
            vec![4.0, 1.0, 0.5, 0.0],
            vec![1.0, 3.0, 0.2, 0.1],
            vec![0.5, 0.2, 2.0, 0.3],
            vec![0.0, 0.1, 0.3, 1.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&m).unwrap();
        // Rebuild A = V diag(λ) Vᵀ and compare.
        let n = 4;
        let mut lambda = DMatrix::zeros(n, n);
        for i in 0..n {
            lambda.set(i, i, e.eigenvalues[i]);
        }
        let rebuilt = e
            .eigenvectors
            .matmul(&lambda)
            .unwrap()
            .matmul(&e.eigenvectors.transpose())
            .unwrap();
        for r in 0..n {
            for c in 0..n {
                assert!(
                    approx(rebuilt.get(r, c), m.get(r, c), 1e-8),
                    "mismatch at ({r},{c}): {} vs {}",
                    rebuilt.get(r, c),
                    m.get(r, c)
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = DMatrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, 4.0, 0.5],
            vec![1.0, 0.5, 3.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&m).unwrap();
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                let expected = if r == c { 1.0 } else { 0.0 };
                assert!(approx(vtv.get(r, c), expected, 1e-9));
            }
        }
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let m = DMatrix::from_rows(&[
            vec![1.0, 0.2, 0.0],
            vec![0.2, 6.0, 0.1],
            vec![0.0, 0.1, 3.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&m).unwrap();
        assert!(e.eigenvalues[0] >= e.eigenvalues[1]);
        assert!(e.eigenvalues[1] >= e.eigenvalues[2]);
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(symmetric_eigen(&DMatrix::zeros(2, 3)).is_err());
        assert!(symmetric_eigen(&DMatrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let m = DMatrix::from_rows(&[
            vec![2.0, -1.0, 0.3],
            vec![-1.0, 2.5, 0.7],
            vec![0.3, 0.7, 1.5],
        ])
        .unwrap();
        let e = symmetric_eigen(&m).unwrap();
        let trace: f64 = (0..3).map(|i| m.get(i, i)).sum();
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!(approx(trace, sum, 1e-9));
    }
}
