//! Error type for the linear-algebra kernels.

use std::fmt;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Description of the operation.
        op: &'static str,
        /// Shape of the left operand (rows, cols).
        left: (usize, usize),
        /// Shape of the right operand (rows, cols).
        right: (usize, usize),
    },
    /// The matrix is empty where data was required.
    EmptyMatrix,
    /// Requested more components than the data supports.
    TooManyComponents {
        /// Requested number of components.
        requested: usize,
        /// Maximum supported by the input (min(rows, cols)).
        available: usize,
    },
    /// An iterative solver failed to converge.
    NoConvergence(&'static str),
    /// A model was used before being fitted.
    NotFitted(&'static str),
    /// An input that must be non-empty was empty.
    EmptyInput(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            Error::EmptyMatrix => write!(f, "matrix must not be empty"),
            Error::TooManyComponents {
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested {requested} components but only {available} are available"
                )
            }
            Error::NoConvergence(what) => write!(f, "{what} did not converge"),
            Error::NotFitted(what) => write!(f, "{what} used before fit()"),
            Error::EmptyInput(what) => write!(f, "{what} must not be empty"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = Error::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        assert!(e.to_string().contains("matmul"));
        assert!(Error::EmptyMatrix.to_string().contains("empty"));
        assert!(Error::TooManyComponents {
            requested: 5,
            available: 2
        }
        .to_string()
        .contains('5'));
        assert!(Error::NotFitted("pca").to_string().contains("pca"));
    }
}
