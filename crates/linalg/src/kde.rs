//! Gaussian kernel density estimation and local-maxima extraction.
//!
//! The node-extraction step of Series2Graph (Algorithm 2) estimates, for each
//! angular ray ψ, the density of the radii at which the embedded trajectory
//! crosses that ray, and places one node at every local maximum of that
//! density. The bandwidth follows Scott's rule `h = σ(I)·|I|^(-1/5)`,
//! optionally scaled by a user-provided ratio (Figure 7(a) of the paper
//! sweeps this ratio).

use crate::error::{Error, Result};

/// Scott's rule-of-thumb bandwidth: `σ · n^(-1/5)`.
///
/// Returns a small positive floor when the sample is constant so the KDE
/// remains well defined.
pub fn scott_bandwidth(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 1.0;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let sigma = var.sqrt();
    let h = sigma * n.powf(-0.2);
    if h <= f64::EPSILON {
        1e-6
    } else {
        h
    }
}

/// A Gaussian kernel density estimator over a 1-D sample.
#[derive(Debug, Clone)]
pub struct GaussianKde {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl GaussianKde {
    /// Builds a KDE with Scott's bandwidth.
    ///
    /// # Errors
    /// [`Error::EmptyInput`] when `samples` is empty.
    pub fn new(samples: Vec<f64>) -> Result<Self> {
        let h = scott_bandwidth(&samples);
        Self::with_bandwidth(samples, h)
    }

    /// Builds a KDE with an explicit bandwidth (must be positive).
    ///
    /// # Errors
    /// [`Error::EmptyInput`] when `samples` is empty or the bandwidth is not positive.
    pub fn with_bandwidth(samples: Vec<f64>, bandwidth: f64) -> Result<Self> {
        if samples.is_empty() {
            return Err(Error::EmptyInput("KDE samples"));
        }
        if bandwidth <= 0.0 || !bandwidth.is_finite() {
            return Err(Error::EmptyInput("KDE bandwidth"));
        }
        Ok(Self { samples, bandwidth })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of samples backing the estimate.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the estimator holds no samples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Evaluates the density at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let n = self.samples.len() as f64;
        let h = self.bandwidth;
        let norm = 1.0 / (n * h * (std::f64::consts::TAU).sqrt());
        let mut acc = 0.0;
        for &s in &self.samples {
            let z = (x - s) / h;
            acc += (-0.5 * z * z).exp();
        }
        norm * acc
    }

    /// Evaluates the density on a regular grid of `points` values spanning the
    /// sample range expanded by three bandwidths on each side. Returns the
    /// grid positions and the density values.
    pub fn density_grid(&self, points: usize) -> (Vec<f64>, Vec<f64>) {
        let points = points.max(2);
        let lo = self.samples.iter().cloned().fold(f64::INFINITY, f64::min) - 3.0 * self.bandwidth;
        let hi = self
            .samples
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            + 3.0 * self.bandwidth;
        let step = (hi - lo) / (points - 1) as f64;
        let xs: Vec<f64> = (0..points).map(|i| lo + step * i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| self.density(x)).collect();
        (xs, ys)
    }

    /// Finds the positions of the local maxima of the density evaluated on a
    /// grid of `points` values (end points count as maxima when they dominate
    /// their single neighbour). Always returns at least one position — the
    /// global maximum — even for unimodal flat-ish densities.
    pub fn local_maxima(&self, points: usize) -> Vec<f64> {
        let (xs, ys) = self.density_grid(points);
        let mut maxima = Vec::new();
        for i in 0..ys.len() {
            let left = if i == 0 { f64::NEG_INFINITY } else { ys[i - 1] };
            let right = if i + 1 == ys.len() {
                f64::NEG_INFINITY
            } else {
                ys[i + 1]
            };
            if ys[i] > left && ys[i] >= right && ys[i] > 0.0 {
                maxima.push(xs[i]);
            }
        }
        if maxima.is_empty() {
            // Perfectly flat grid (pathological): fall back to the global max.
            if let Some((idx, _)) = ys
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            {
                maxima.push(xs[idx]);
            }
        }
        maxima
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scott_bandwidth_scales_with_sigma() {
        let narrow: Vec<f64> = (0..100).map(|i| (i % 10) as f64 * 0.01).collect();
        let wide: Vec<f64> = (0..100).map(|i| (i % 10) as f64 * 10.0).collect();
        assert!(scott_bandwidth(&wide) > scott_bandwidth(&narrow));
        assert!(scott_bandwidth(&[]) > 0.0);
        assert!(scott_bandwidth(&[3.0, 3.0, 3.0]) > 0.0);
    }

    #[test]
    fn density_integrates_to_one() {
        let samples = vec![-1.0, 0.0, 0.5, 2.0, 2.2, 2.4];
        let kde = GaussianKde::new(samples).unwrap();
        let (xs, ys) = kde.density_grid(2000);
        let step = xs[1] - xs[0];
        let integral: f64 = ys.iter().sum::<f64>() * step;
        assert!((integral - 1.0).abs() < 0.02, "integral = {integral}");
    }

    #[test]
    fn density_peaks_near_sample_cluster() {
        let mut samples = vec![0.0; 50];
        samples.extend(vec![10.0; 5]);
        let kde = GaussianKde::new(samples).unwrap();
        assert!(kde.density(0.0) > kde.density(10.0));
        assert!(kde.density(10.0) > kde.density(5.0));
    }

    #[test]
    fn bimodal_sample_yields_two_maxima() {
        let mut samples: Vec<f64> = (0..60).map(|i| (i % 7) as f64 * 0.05).collect();
        samples.extend((0..60).map(|i| 8.0 + (i % 7) as f64 * 0.05));
        let kde = GaussianKde::new(samples).unwrap();
        let maxima = kde.local_maxima(400);
        assert!(maxima.len() >= 2, "expected >= 2 maxima, got {maxima:?}");
        assert!(maxima.iter().any(|&m| (m - 0.15).abs() < 1.0));
        assert!(maxima.iter().any(|&m| (m - 8.15).abs() < 1.0));
    }

    #[test]
    fn large_bandwidth_merges_modes() {
        let mut samples: Vec<f64> = vec![0.0; 30];
        samples.extend(vec![4.0; 30]);
        let wide = GaussianKde::with_bandwidth(samples.clone(), 10.0).unwrap();
        assert_eq!(wide.local_maxima(300).len(), 1);
        let narrow = GaussianKde::with_bandwidth(samples, 0.2).unwrap();
        assert!(narrow.local_maxima(300).len() >= 2);
    }

    #[test]
    fn single_sample_has_single_maximum_at_sample() {
        let kde = GaussianKde::with_bandwidth(vec![3.5], 0.5).unwrap();
        let maxima = kde.local_maxima(200);
        assert_eq!(maxima.len(), 1);
        assert!((maxima[0] - 3.5).abs() < 0.05);
    }

    #[test]
    fn rejects_empty_or_bad_bandwidth() {
        assert!(GaussianKde::new(vec![]).is_err());
        assert!(GaussianKde::with_bandwidth(vec![1.0], 0.0).is_err());
        assert!(GaussianKde::with_bandwidth(vec![1.0], f64::NAN).is_err());
    }

    #[test]
    fn local_maxima_never_empty() {
        let kde = GaussianKde::with_bandwidth(vec![1.0, 1.0, 1.0], 1e-6).unwrap();
        assert!(!kde.local_maxima(50).is_empty());
    }
}
