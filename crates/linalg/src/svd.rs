//! Randomized truncated singular value decomposition.
//!
//! Implements the random-projection sketching scheme of Halko, Martinsson &
//! Tropp ("Finding structure with randomness", SIAM Review 2011), which is
//! the algorithm the Series2Graph paper cites for its PCA step. The input is
//! an `n × d` matrix with `n` potentially in the millions and `d = ℓ − λ`
//! (tens to a few hundreds); only the top `k` right singular vectors are
//! needed, so a sketch of `k + oversample` columns is sufficient.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::eigen::symmetric_eigen;
use crate::error::{Error, Result};
use crate::matrix::DMatrix;

/// Options controlling the randomized SVD.
#[derive(Debug, Clone, Copy)]
pub struct RandomizedSvdOptions {
    /// Number of singular triplets to compute.
    pub rank: usize,
    /// Extra sketch columns beyond `rank` (Halko et al. recommend 5–10).
    pub oversample: usize,
    /// Number of power iterations (improves accuracy when the spectrum decays slowly).
    pub power_iterations: usize,
    /// Seed of the Gaussian test matrix.
    pub seed: u64,
}

impl Default for RandomizedSvdOptions {
    fn default() -> Self {
        Self {
            rank: 3,
            oversample: 7,
            power_iterations: 2,
            seed: 0x5eed_5eed,
        }
    }
}

/// A truncated SVD `A ≈ U · diag(σ) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Singular values in decreasing order (length `rank`).
    pub singular_values: Vec<f64>,
    /// Right singular vectors as the columns of a `d × rank` matrix.
    pub v: DMatrix,
}

/// Computes a randomized truncated SVD of `a` (returning singular values and
/// right singular vectors, which is what PCA needs).
///
/// # Errors
/// * [`Error::EmptyMatrix`] on an empty input.
/// * [`Error::TooManyComponents`] when `rank` exceeds `min(n, d)`.
pub fn randomized_svd(a: &DMatrix, opts: RandomizedSvdOptions) -> Result<TruncatedSvd> {
    let (n, d) = a.shape();
    if n == 0 || d == 0 {
        return Err(Error::EmptyMatrix);
    }
    let max_rank = n.min(d);
    if opts.rank == 0 || opts.rank > max_rank {
        return Err(Error::TooManyComponents {
            requested: opts.rank,
            available: max_rank,
        });
    }
    let sketch = (opts.rank + opts.oversample).min(max_rank);

    // 1. Gaussian test matrix Ω (d × sketch).
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut omega = DMatrix::zeros(d, sketch);
    for r in 0..d {
        for c in 0..sketch {
            omega.set(r, c, standard_normal(&mut rng));
        }
    }

    // 2. Sample the range of A: Y = A Ω  (n × sketch), orthonormalise.
    let mut y = a.matmul(&omega)?;
    let mut q = orthonormalize_columns(&mut y);

    // 3. Optional power iterations to sharpen the subspace: Y = A (Aᵀ Q).
    for _ in 0..opts.power_iterations {
        let z = matmul_transpose_left(a, &q)?; // d × sketch
        let mut z = orthonormalize_columns_owned(z);
        let mut y2 = a.matmul(&z)?;
        q = orthonormalize_columns(&mut y2);
        // keep z alive only within the loop
        z.scale_in_place(1.0);
    }

    // 4. Project: B = Qᵀ A  (sketch × d).
    let b = matmul_transpose_left(&q, a)?; // (sketch × d): (Qᵀ A)

    // 5. Exact SVD of the small matrix B via the eigen-decomposition of B Bᵀ.
    let bbt = gram_of_transpose(&b); // sketch × sketch
    let eig = symmetric_eigen(&bbt)?;

    let mut singular_values = Vec::with_capacity(opts.rank);
    let mut v = DMatrix::zeros(d, opts.rank);
    for comp in 0..opts.rank {
        let lambda = eig.eigenvalues[comp].max(0.0);
        let sigma = lambda.sqrt();
        singular_values.push(sigma);
        // Right singular vector: v = Bᵀ u / σ (fall back to zeros for σ ≈ 0).
        let u = eig.eigenvectors.col(comp);
        if sigma > 1e-12 {
            for row in 0..d {
                let mut acc = 0.0;
                for (s, &u_s) in u.iter().enumerate() {
                    acc += b.get(s, row) * u_s;
                }
                v.set(row, comp, acc / sigma);
            }
        }
    }

    Ok(TruncatedSvd { singular_values, v })
}

/// Draws a standard normal variate via the Box–Muller transform (keeps the
/// dependency surface to plain `rand` without `rand_distr`).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Orthonormalises the columns of `m` in place (modified Gram–Schmidt) and
/// returns the resulting matrix. Columns that become numerically zero are
/// left as zeros.
fn orthonormalize_columns(m: &mut DMatrix) -> DMatrix {
    let (n, k) = m.shape();
    for j in 0..k {
        // Subtract projections on previous columns.
        for prev in 0..j {
            let mut dot = 0.0;
            for r in 0..n {
                dot += m.get(r, j) * m.get(r, prev);
            }
            for r in 0..n {
                let v = m.get(r, j) - dot * m.get(r, prev);
                m.set(r, j, v);
            }
        }
        let mut norm = 0.0;
        for r in 0..n {
            norm += m.get(r, j) * m.get(r, j);
        }
        let norm = norm.sqrt();
        if norm > 1e-12 {
            for r in 0..n {
                m.set(r, j, m.get(r, j) / norm);
            }
        }
    }
    m.clone()
}

fn orthonormalize_columns_owned(mut m: DMatrix) -> DMatrix {
    orthonormalize_columns(&mut m)
}

/// Computes `leftᵀ · right` without materialising `leftᵀ`.
fn matmul_transpose_left(left: &DMatrix, right: &DMatrix) -> Result<DMatrix> {
    let (n_l, k) = left.shape();
    let (n_r, d) = right.shape();
    if n_l != n_r {
        return Err(Error::ShapeMismatch {
            op: "matmul_transpose_left",
            left: (n_l, k),
            right: (n_r, d),
        });
    }
    let mut out = DMatrix::zeros(k, d);
    for r in 0..n_l {
        let lrow = left.row(r);
        let rrow = right.row(r);
        for (i, &li) in lrow.iter().enumerate() {
            if li == 0.0 {
                continue;
            }
            let out_row = out.row_mut(i);
            for (j, &rj) in rrow.iter().enumerate() {
                out_row[j] += li * rj;
            }
        }
    }
    Ok(out)
}

/// Computes `m · mᵀ`.
fn gram_of_transpose(m: &DMatrix) -> DMatrix {
    let (rows, _cols) = m.shape();
    let mut out = DMatrix::zeros(rows, rows);
    for i in 0..rows {
        for j in i..rows {
            let dot: f64 = m
                .row(i)
                .iter()
                .zip(m.row(j).iter())
                .map(|(a, b)| a * b)
                .sum();
            out.set(i, j, dot);
            out.set(j, i, dot);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a low-rank matrix with known principal directions.
    fn low_rank_matrix(n: usize) -> DMatrix {
        // Rows are combinations of two orthogonal direction vectors in R^6.
        let d1 = [1.0, 1.0, 0.0, 0.0, -1.0, -1.0];
        let d2 = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i as f64 * 0.37).sin() * 10.0;
            let b = (i as f64 * 0.11).cos() * 2.0;
            let row: Vec<f64> = (0..6).map(|j| a * d1[j] + b * d2[j]).collect();
            rows.push(row);
        }
        DMatrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn recovers_dominant_direction_of_low_rank_matrix() {
        let a = low_rank_matrix(500);
        let svd = randomized_svd(
            &a,
            RandomizedSvdOptions {
                rank: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(svd.v.shape(), (6, 2));
        // First right singular vector must align with d1 (normalised) up to sign.
        let d1_norm = 2.0; // ||(1,1,0,0,-1,-1)|| = 2
        let expected: Vec<f64> = [1.0, 1.0, 0.0, 0.0, -1.0, -1.0]
            .iter()
            .map(|x| x / d1_norm)
            .collect();
        let got = svd.v.col(0);
        let dot: f64 = got.iter().zip(expected.iter()).map(|(a, b)| a * b).sum();
        assert!(
            dot.abs() > 0.999,
            "dominant direction not recovered, |dot|={}",
            dot.abs()
        );
        // Singular values are sorted and the third would be ~0 for rank-2 data.
        assert!(svd.singular_values[0] >= svd.singular_values[1]);
    }

    #[test]
    fn right_singular_vectors_are_orthonormal() {
        let a = low_rank_matrix(300);
        let svd = randomized_svd(
            &a,
            RandomizedSvdOptions {
                rank: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let v = &svd.v;
        let dot01: f64 = v
            .col(0)
            .iter()
            .zip(v.col(1).iter())
            .map(|(a, b)| a * b)
            .sum();
        let n0: f64 = v.col(0).iter().map(|x| x * x).sum::<f64>().sqrt();
        let n1: f64 = v.col(1).iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(dot01.abs() < 1e-6);
        assert!((n0 - 1.0).abs() < 1e-6);
        assert!((n1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = low_rank_matrix(200);
        let o = RandomizedSvdOptions {
            rank: 2,
            seed: 42,
            ..Default::default()
        };
        let s1 = randomized_svd(&a, o).unwrap();
        let s2 = randomized_svd(&a, o).unwrap();
        assert_eq!(s1.v, s2.v);
        assert_eq!(s1.singular_values, s2.singular_values);
    }

    #[test]
    fn rejects_bad_rank_and_empty() {
        let a = low_rank_matrix(10);
        assert!(randomized_svd(
            &a,
            RandomizedSvdOptions {
                rank: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(randomized_svd(
            &a,
            RandomizedSvdOptions {
                rank: 7,
                ..Default::default()
            }
        )
        .is_err());
        let empty = DMatrix::zeros(0, 0);
        assert!(randomized_svd(&empty, RandomizedSvdOptions::default()).is_err());
    }

    #[test]
    fn singular_values_match_frobenius_energy_for_full_rank_request() {
        // For a small matrix, the sum of squared singular values of the full
        // decomposition equals the squared Frobenius norm.
        let a = DMatrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![0.0, 1.0, -1.0],
            vec![3.0, 0.2, 0.1],
            vec![1.0, 1.0, 1.0],
        ])
        .unwrap();
        let svd = randomized_svd(
            &a,
            RandomizedSvdOptions {
                rank: 3,
                oversample: 3,
                power_iterations: 4,
                seed: 7,
            },
        )
        .unwrap();
        let energy: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        let frob2 = a.frobenius_norm().powi(2);
        assert!((energy - frob2).abs() < 1e-6 * frob2, "{energy} vs {frob2}");
    }
}
