//! 3-D rotations used to align the reference vector `v_ref` with the x-axis.
//!
//! The paper composes three per-axis rotation matrices `R_ux(φx)·R_uy(φy)·R_uz(φz)`
//! built from the angles between `v_ref` and the coordinate axes. The exact
//! same effect — mapping `v_ref/‖v_ref‖` onto the x-axis so that the
//! remaining two coordinates carry only shape information — is obtained more
//! robustly with a single axis–angle (Rodrigues) rotation, which is what
//! [`align_to_x_axis`] produces. Both constructions are provided; the core
//! crate uses the Rodrigues form and the per-axis form is kept for parity
//! with the paper's notation and for the ablation benchmarks.

use crate::matrix::DMatrix;
use crate::vector::Vec3;

/// A 3×3 rotation matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Rotation3 {
    m: [[f64; 3]; 3],
}

impl Rotation3 {
    /// Builds a rotation directly from its 3×3 matrix rows. The caller is
    /// responsible for passing an orthonormal matrix; used by model
    /// persistence to round-trip a fitted rotation exactly.
    pub fn from_rows(m: [[f64; 3]; 3]) -> Self {
        Self { m }
    }

    /// The rotation's raw 3×3 matrix rows (inverse of [`Rotation3::from_rows`]).
    pub fn rows(&self) -> [[f64; 3]; 3] {
        self.m
    }

    /// The identity rotation.
    pub fn identity() -> Self {
        Self {
            m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// Rotation about the x-axis by `angle` radians.
    pub fn about_x(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Self {
            m: [[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]],
        }
    }

    /// Rotation about the y-axis by `angle` radians.
    pub fn about_y(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Self {
            m: [[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]],
        }
    }

    /// Rotation about the z-axis by `angle` radians.
    pub fn about_z(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Self {
            m: [[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// Axis–angle (Rodrigues) rotation about the given axis. A zero axis
    /// yields the identity.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Self {
        let Some(u) = axis.normalized() else {
            return Self::identity();
        };
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        let (x, y, z) = (u.x, u.y, u.z);
        Self {
            m: [
                [t * x * x + c, t * x * y - s * z, t * x * z + s * y],
                [t * x * y + s * z, t * y * y + c, t * y * z - s * x],
                [t * x * z - s * y, t * y * z + s * x, t * z * z + c],
            ],
        }
    }

    /// Composition `self ∘ other` (apply `other` first, then `self`).
    pub fn compose(&self, other: &Rotation3) -> Rotation3 {
        let mut out = [[0.0; 3]; 3];
        for (i, out_row) in out.iter_mut().enumerate() {
            for (j, out_v) in out_row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for k in 0..3 {
                    acc += self.m[i][k] * other.m[k][j];
                }
                *out_v = acc;
            }
        }
        Rotation3 { m: out }
    }

    /// Applies the rotation to a vector.
    pub fn apply(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }

    /// The inverse rotation (transpose).
    pub fn inverse(&self) -> Rotation3 {
        let mut out = [[0.0; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = self.m[j][i];
            }
        }
        Rotation3 { m: out }
    }

    /// Returns the rotation as a 3×3 [`DMatrix`].
    pub fn to_matrix(&self) -> DMatrix {
        let mut m = DMatrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                m.set(i, j, self.m[i][j]);
            }
        }
        m
    }

    /// Raw element accessor.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.m[i][j]
    }
}

/// Builds the rotation that maps `v_ref/‖v_ref‖` onto the positive x-axis.
///
/// After applying this rotation, the x-coordinate of an embedded subsequence
/// carries the offset/average-value information (the direction along which
/// constant series of different levels vary) and the `(y, z)` pair carries
/// the shape information used by the node-extraction step.
///
/// Degenerate cases: a zero `v_ref` yields the identity; a `v_ref` exactly
/// opposite to the x-axis rotates about the z-axis by π.
pub fn align_to_x_axis(v_ref: Vec3) -> Rotation3 {
    let Some(u) = v_ref.normalized() else {
        return Rotation3::identity();
    };
    let target = Vec3::unit_x();
    let dot = u.dot(&target).clamp(-1.0, 1.0);
    if (dot - 1.0).abs() < 1e-12 {
        return Rotation3::identity();
    }
    if (dot + 1.0).abs() < 1e-12 {
        // 180° turn; any axis orthogonal to x works.
        return Rotation3::about_z(std::f64::consts::PI);
    }
    let axis = u.cross(&target);
    let angle = dot.acos();
    Rotation3::from_axis_angle(axis, angle)
}

/// Builds the paper's composed per-axis rotation `R_ux(φx)·R_uy(φy)·R_uz(φz)`
/// from the angles between `v_ref` and the three coordinate axes.
///
/// This mirrors Algorithm 1 lines 11–12 literally. Note that composing
/// per-axis rotations from independent angles does not, in general, map
/// `v_ref` exactly onto the x-axis (the axis–angle construction in
/// [`align_to_x_axis`] does); it is retained for completeness and ablation.
pub fn per_axis_rotation(v_ref: Vec3) -> Rotation3 {
    let phi_x = v_ref.angle_to(&Vec3::unit_x());
    let phi_y = v_ref.angle_to(&Vec3::unit_y());
    let phi_z = v_ref.angle_to(&Vec3::unit_z());
    Rotation3::about_x(phi_x)
        .compose(&Rotation3::about_y(phi_y))
        .compose(&Rotation3::about_z(phi_z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_vec_close(a: Vec3, b: Vec3, eps: f64) {
        assert!((a - b).norm() < eps, "{a:?} != {b:?}");
    }

    #[test]
    fn basic_axis_rotations() {
        let v = Vec3::unit_y();
        assert_vec_close(
            Rotation3::about_x(FRAC_PI_2).apply(v),
            Vec3::unit_z(),
            1e-12,
        );
        assert_vec_close(
            Rotation3::about_z(FRAC_PI_2).apply(Vec3::unit_x()),
            Vec3::unit_y(),
            1e-12,
        );
        assert_vec_close(
            Rotation3::about_y(FRAC_PI_2).apply(Vec3::unit_z()),
            Vec3::unit_x(),
            1e-12,
        );
    }

    #[test]
    fn rotations_preserve_norm() {
        let r = Rotation3::from_axis_angle(Vec3::new(1.0, 2.0, -0.5), 1.234);
        let v = Vec3::new(3.0, -1.0, 2.0);
        assert!((r.apply(v).norm() - v.norm()).abs() < 1e-12);
    }

    #[test]
    fn inverse_undoes_rotation() {
        let r = Rotation3::from_axis_angle(Vec3::new(0.3, -1.0, 0.7), 2.1);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_vec_close(r.inverse().apply(r.apply(v)), v, 1e-12);
    }

    #[test]
    fn compose_applies_right_then_left() {
        let rz = Rotation3::about_z(FRAC_PI_2);
        let rx = Rotation3::about_x(FRAC_PI_2);
        // (rx ∘ rz)(ux): rz sends ux->uy, then rx sends uy->uz.
        let composed = rx.compose(&rz);
        assert_vec_close(composed.apply(Vec3::unit_x()), Vec3::unit_z(), 1e-12);
    }

    #[test]
    fn align_maps_vref_to_x_axis() {
        for v in [
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(-3.0, 0.5, 2.0),
            Vec3::new(0.0, 5.0, 0.0),
            Vec3::new(0.0, 0.0, -2.0),
            Vec3::new(17.0, 0.0, 0.0),
        ] {
            let r = align_to_x_axis(v);
            let rotated = r.apply(v);
            let expected = Vec3::new(v.norm(), 0.0, 0.0);
            assert_vec_close(rotated, expected, 1e-9);
        }
    }

    #[test]
    fn align_handles_antiparallel_and_zero() {
        let r = align_to_x_axis(Vec3::new(-4.0, 0.0, 0.0));
        assert_vec_close(
            r.apply(Vec3::new(-4.0, 0.0, 0.0)),
            Vec3::new(4.0, 0.0, 0.0),
            1e-9,
        );
        let id = align_to_x_axis(Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(id, Rotation3::identity());
    }

    #[test]
    fn align_preserves_distances_between_points() {
        let r = align_to_x_axis(Vec3::new(2.0, -1.0, 0.5));
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.0, 1.0);
        let before = (a - b).norm();
        let after = (r.apply(a) - r.apply(b)).norm();
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn per_axis_rotation_is_orthonormal() {
        let r = per_axis_rotation(Vec3::new(1.0, 2.0, 3.0));
        // R Rᵀ = I
        let rt = r.inverse();
        let prod = r.compose(&rt);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((prod.get(i, j) - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn to_matrix_matches_elements() {
        let r = Rotation3::about_z(PI / 3.0);
        let m = r.to_matrix();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), r.get(i, j));
            }
        }
    }
}
