//! Small fixed-dimension vector helpers used by the embedding rotation and
//! the node-extraction geometry.

/// A 2-D vector (the `(r_y, r_z)` plane of the rotated projection).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// First component.
    pub x: f64,
    /// Second component.
    pub y: f64,
}

impl Vec2 {
    /// Creates a new 2-D vector.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product.
    pub fn dot(&self, other: &Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    pub fn cross(&self, other: &Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Angle of the vector in `[0, 2π)` measured from the positive x-axis.
    pub fn angle(&self) -> f64 {
        let a = self.y.atan2(self.x);
        if a < 0.0 {
            a + std::f64::consts::TAU
        } else {
            a
        }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Vec2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Returns the unit vector with the given angle.
    pub fn from_angle(theta: f64) -> Self {
        Self {
            x: theta.cos(),
            y: theta.sin(),
        }
    }
}

impl std::ops::Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl std::ops::Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl std::ops::Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

/// A 3-D vector (the reduced PCA space before rotation).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// First component.
    pub x: f64,
    /// Second component.
    pub y: f64,
    /// Third component.
    pub z: f64,
}

impl Vec3 {
    /// Creates a new 3-D vector.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The x-axis unit vector.
    pub const fn unit_x() -> Self {
        Self::new(1.0, 0.0, 0.0)
    }

    /// The y-axis unit vector.
    pub const fn unit_y() -> Self {
        Self::new(0.0, 1.0, 0.0)
    }

    /// The z-axis unit vector.
    pub const fn unit_z() -> Self {
        Self::new(0.0, 0.0, 1.0)
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Dot product.
    pub fn dot(&self, other: &Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(&self, other: &Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Returns the normalised vector, or `None` if the norm is (near) zero.
    pub fn normalized(&self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-15 {
            None
        } else {
            Some(Vec3::new(self.x / n, self.y / n, self.z / n))
        }
    }

    /// Angle between two vectors in radians, in `[0, π]`.
    pub fn angle_to(&self, other: &Vec3) -> f64 {
        let denom = self.norm() * other.norm();
        if denom < 1e-15 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0).acos()
    }

    /// Builds a `Vec3` from the first three elements of a slice (missing
    /// elements default to zero).
    pub fn from_slice(xs: &[f64]) -> Vec3 {
        Vec3::new(
            xs.first().copied().unwrap_or(0.0),
            xs.get(1).copied().unwrap_or(0.0),
            xs.get(2).copied().unwrap_or(0.0),
        )
    }

    /// Returns the components as an array.
    pub fn to_array(&self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl std::ops::Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    #[test]
    fn vec2_norm_dot_cross() {
        let a = Vec2::new(3.0, 4.0);
        let b = Vec2::new(1.0, 0.0);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        assert!((a.dot(&b) - 3.0).abs() < 1e-12);
        assert!((a.cross(&b) + 4.0).abs() < 1e-12);
    }

    #[test]
    fn vec2_angle_quadrants() {
        assert!((Vec2::new(1.0, 0.0).angle() - 0.0).abs() < 1e-12);
        assert!((Vec2::new(0.0, 1.0).angle() - FRAC_PI_2).abs() < 1e-12);
        assert!((Vec2::new(-1.0, 0.0).angle() - PI).abs() < 1e-12);
        let a = Vec2::new(0.0, -1.0).angle();
        assert!(a > PI && a < TAU);
    }

    #[test]
    fn vec2_from_angle_roundtrip() {
        for k in 0..8 {
            let theta = k as f64 * TAU / 8.0;
            let v = Vec2::from_angle(theta);
            assert!((v.angle() - theta).abs() < 1e-9 || (v.angle() - theta - TAU).abs() < 1e-9);
        }
    }

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(0.5, -1.0);
        assert_eq!(a + b, Vec2::new(1.5, 1.0));
        assert_eq!(a - b, Vec2::new(0.5, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert!((a.distance(&b) - ((0.5f64).powi(2) + 9.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn vec3_cross_right_handed() {
        let c = Vec3::unit_x().cross(&Vec3::unit_y());
        assert!((c - Vec3::unit_z()).norm() < 1e-12);
    }

    #[test]
    fn vec3_angle_to_axes() {
        assert!((Vec3::unit_x().angle_to(&Vec3::unit_y()) - FRAC_PI_2).abs() < 1e-12);
        assert!(Vec3::unit_x().angle_to(&Vec3::unit_x()).abs() < 1e-12);
        assert!((Vec3::new(-2.0, 0.0, 0.0).angle_to(&Vec3::unit_x()) - PI).abs() < 1e-12);
    }

    #[test]
    fn vec3_normalized() {
        let v = Vec3::new(0.0, 3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Vec3::new(0.0, 0.0, 0.0).normalized().is_none());
    }

    #[test]
    fn vec3_from_slice_padding() {
        assert_eq!(Vec3::from_slice(&[1.0]), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(
            Vec3::from_slice(&[1.0, 2.0, 3.0, 4.0]),
            Vec3::new(1.0, 2.0, 3.0)
        );
    }

    #[test]
    fn vec3_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(1.0, 1.0, 1.0);
        assert_eq!(a + b, Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(a - b, Vec3::new(0.0, 1.0, 2.0));
        assert_eq!(b * 3.0, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a.to_array(), [1.0, 2.0, 3.0]);
    }
}
