//! # s2g-linalg
//!
//! Small, dependency-light dense linear-algebra kernels needed by the
//! Series2Graph embedding and node-extraction steps:
//!
//! * [`matrix::DMatrix`] — row-major dense matrix with the handful of
//!   operations the pipeline needs (multiplication, transpose, column
//!   centring, Gram matrices),
//! * [`eigen`] — cyclic Jacobi eigen-decomposition of symmetric matrices,
//! * [`svd`] — randomized truncated SVD following Halko, Martinsson & Tropp
//!   (the method cited by the paper for the PCA step),
//! * [`pca`] — principal component analysis with both an exact covariance
//!   solver and the randomized solver, used to produce the 3-dimensional
//!   reduced projection `Proj_r(T, ℓ, λ)`,
//! * [`rotation`] — 3-D rotation matrices (per-axis and axis–angle) used to
//!   align the reference vector `v_ref` with the x-axis and obtain
//!   `SProj(T, ℓ, λ)`,
//! * [`kde`] — Gaussian kernel density estimation with Scott's bandwidth rule
//!   and local-maxima extraction, used to turn radius sets `I_ψ` into graph
//!   nodes,
//! * [`vector`] — small fixed-size vector helpers (`Vec2`/`Vec3`).
//!
//! Everything is deterministic given an explicit random seed; the only
//! dependency is `rand` for the Gaussian test matrix of the randomized SVD.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eigen;
pub mod error;
pub mod kde;
pub mod matrix;
pub mod pca;
pub mod rotation;
pub mod svd;
pub mod vector;

pub use error::{Error, Result};
pub use matrix::DMatrix;
pub use pca::Pca;
pub use vector::{Vec2, Vec3};
