//! Row-major dense matrix with the operations needed by the embedding pipeline.

use crate::error::{Error, Result};

/// A dense, row-major `f64` matrix.
///
/// The type purposely implements only the operations this workspace needs
/// (multiplication, transpose, column centring, Gram matrices, row/column
/// access); it is not a general-purpose linear-algebra library.
#[derive(Debug, Clone, PartialEq)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::ShapeMismatch {
                op: "from_vec",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    /// [`Error::EmptyMatrix`] for no rows, [`Error::ShapeMismatch`] for ragged rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(Error::EmptyMatrix);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(Error::ShapeMismatch {
                    op: "from_rows",
                    left: (1, cols),
                    right: (1, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor (panics on out-of-bounds, like slice indexing).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element setter (panics on out-of-bounds, like slice indexing).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> DMatrix {
        let mut out = DMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] when inner dimensions differ.
    pub fn matmul(&self, other: &DMatrix) -> Result<DMatrix> {
        if self.cols != other.rows {
            return Err(Error::ShapeMismatch {
                op: "matmul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = DMatrix::zeros(self.rows, other.cols);
        // i-k-j loop order for cache-friendly access of row-major operands.
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &bkj) in b_row.iter().enumerate() {
                    out_row[j] += aik * bkj;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] when `v.len() != ncols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(Error::ShapeMismatch {
                op: "matvec",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v.iter()).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Per-column means.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (c, m) in means.iter_mut().enumerate() {
                *m += self.get(r, c);
            }
        }
        let n = self.rows.max(1) as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Returns a copy with every column centred to zero mean, along with the
    /// subtracted means.
    pub fn centered(&self) -> (DMatrix, Vec<f64>) {
        let means = self.column_means();
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v -= means[c];
            }
        }
        (out, means)
    }

    /// Gram matrix `selfᵀ · self`, computed without materialising the transpose.
    pub fn gram(&self) -> DMatrix {
        let mut out = DMatrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (j, &rj) in row.iter().enumerate() {
                    out_row[j] += ri * rj;
                }
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn construction_and_access() {
        let m = DMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(DMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged_and_empty() {
        assert!(DMatrix::from_rows(&[]).is_err());
        assert!(DMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = DMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let i = DMatrix::identity(3);
        let p = m.matmul(&i).unwrap();
        assert_eq!(p, m);
    }

    #[test]
    fn matmul_known_result() {
        let a = DMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(approx(c.get(0, 0), 19.0));
        assert!(approx(c.get(0, 1), 22.0));
        assert!(approx(c.get(1, 0), 43.0));
        assert!(approx(c.get(1, 1), 50.0));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = DMatrix::zeros(2, 3);
        let b = DMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = DMatrix::from_rows(&[vec![1.0, -1.0, 2.0], vec![0.0, 3.0, 1.0]]).unwrap();
        let v = vec![2.0, 1.0, 0.5];
        let got = a.matvec(&v).unwrap();
        assert!(approx(got[0], 2.0));
        assert!(approx(got[1], 3.5));
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = DMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
    }

    #[test]
    fn centered_columns_have_zero_mean() {
        let m = DMatrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]]).unwrap();
        let (c, means) = m.centered();
        assert!(approx(means[0], 3.0) && approx(means[1], 20.0));
        let cm = c.column_means();
        assert!(cm.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let m = DMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let g = m.gram();
        let explicit = m.transpose().matmul(&m).unwrap();
        for r in 0..2 {
            for c in 0..2 {
                assert!(approx(g.get(r, c), explicit.get(r, c)));
            }
        }
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = DMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!(approx(m.frobenius_norm(), 5.0));
    }

    #[test]
    fn scale_in_place_scales_all() {
        let mut m = DMatrix::identity(2);
        m.scale_in_place(3.0);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(0, 1), 0.0);
    }
}
