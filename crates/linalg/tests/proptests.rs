//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;
use s2g_linalg::eigen::symmetric_eigen;
use s2g_linalg::kde::{scott_bandwidth, GaussianKde};
use s2g_linalg::matrix::DMatrix;
use s2g_linalg::pca::Pca;
use s2g_linalg::rotation::align_to_x_axis;
use s2g_linalg::vector::Vec3;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = DMatrix> {
    (2usize..max_dim, 2usize..max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| DMatrix::from_vec(r, c, data).unwrap())
    })
}

fn symmetric_matrix(max_dim: usize) -> impl Strategy<Value = DMatrix> {
    (2usize..max_dim).prop_flat_map(|n| {
        prop::collection::vec(-10.0f64..10.0, n * n).prop_map(move |data| {
            let a = DMatrix::from_vec(n, n, data).unwrap();
            // Symmetrise: (A + Aᵀ) / 2
            let at = a.transpose();
            let mut s = DMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    s.set(i, j, 0.5 * (a.get(i, j) + at.get(i, j)));
                }
            }
            s
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in small_matrix(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_with_identity_is_identity_op(m in small_matrix(8)) {
        let i = DMatrix::identity(m.ncols());
        let p = m.matmul(&i).unwrap();
        for r in 0..m.nrows() {
            for c in 0..m.ncols() {
                prop_assert!((p.get(r, c) - m.get(r, c)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gram_matrix_is_symmetric_psd_diagonal(m in small_matrix(8)) {
        let g = m.gram();
        for i in 0..g.nrows() {
            prop_assert!(g.get(i, i) >= -1e-9);
            for j in 0..g.ncols() {
                prop_assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn eigen_trace_and_orthogonality(m in symmetric_matrix(7)) {
        let e = symmetric_eigen(&m).unwrap();
        let n = m.nrows();
        let trace: f64 = (0..n).map(|i| m.get(i, i)).sum();
        let sum: f64 = e.eigenvalues.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-6 * trace.abs().max(1.0));
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        for i in 0..n {
            for j in 0..n {
                let expected = if i == j { 1.0 } else { 0.0 };
                prop_assert!((vtv.get(i, j) - expected).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn rotation_aligns_and_preserves_norm(
        x in -50.0f64..50.0,
        y in -50.0f64..50.0,
        z in -50.0f64..50.0,
    ) {
        let v = Vec3::new(x, y, z);
        prop_assume!(v.norm() > 1e-6);
        let r = align_to_x_axis(v);
        let rotated = r.apply(v);
        prop_assert!((rotated.norm() - v.norm()).abs() < 1e-9);
        prop_assert!((rotated.x - v.norm()).abs() < 1e-6);
        prop_assert!(rotated.y.abs() < 1e-6);
        prop_assert!(rotated.z.abs() < 1e-6);
    }

    #[test]
    fn pca_explained_ratio_bounded(m in small_matrix(8)) {
        prop_assume!(m.nrows() >= 3 && m.ncols() >= 3);
        if let Ok(pca) = Pca::fit(&m, 2) {
            let ratio = pca.explained_variance_ratio();
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&ratio), "ratio={ratio}");
        }
    }

    #[test]
    fn kde_density_is_nonnegative_and_finite(
        samples in prop::collection::vec(-100.0f64..100.0, 1..50),
        query in -200.0f64..200.0,
    ) {
        let kde = GaussianKde::new(samples).unwrap();
        let d = kde.density(query);
        prop_assert!(d.is_finite());
        prop_assert!(d >= 0.0);
    }

    #[test]
    fn scott_bandwidth_positive(samples in prop::collection::vec(-1e4f64..1e4, 0..100)) {
        prop_assert!(scott_bandwidth(&samples) > 0.0);
    }

    #[test]
    fn kde_local_maxima_fall_within_extended_range(
        samples in prop::collection::vec(-100.0f64..100.0, 2..60),
    ) {
        let kde = GaussianKde::new(samples.clone()).unwrap();
        let maxima = kde.local_maxima(200);
        prop_assert!(!maxima.is_empty());
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min) - 4.0 * kde.bandwidth();
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 4.0 * kde.bandwidth();
        for m in maxima {
            prop_assert!(m >= lo && m <= hi);
        }
    }
}
