//! HTTP keep-alive acceptance: persistent connections serve multiple
//! requests, honor explicit `Connection: close`, idle out, and the client
//! transparently replaces a pooled socket the server has closed.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use s2g_server::{Client, Server, ServerConfig, ShutdownHandle};

fn start_server(config: ServerConfig) -> (String, ShutdownHandle, thread::JoinHandle<()>) {
    let server = Server::bind(config.with_addr("127.0.0.1:0")).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let thread = thread::spawn(move || server.run().unwrap());
    (addr, handle, thread)
}

fn sine_csv(n: usize) -> String {
    (0..n)
        .map(|i| format!("{}\n", (std::f64::consts::TAU * i as f64 / 80.0).sin()))
        .collect()
}

/// Reads exactly one `Content-Length`-framed response off a raw socket.
fn read_one_response(stream: &mut TcpStream) -> String {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    // Head: read until CRLFCRLF.
    while !raw.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).unwrap(), 1, "EOF inside head");
        raw.push(byte[0]);
    }
    let head = String::from_utf8(raw.clone()).unwrap();
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).unwrap();
    raw.extend_from_slice(&body);
    String::from_utf8(raw).unwrap()
}

#[test]
fn one_socket_serves_many_requests_then_honors_close() {
    let (addr, handle, server_thread) = start_server(ServerConfig::default());

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Three requests on the same socket: every response advertises
    // keep-alive and the socket stays usable.
    for round in 0..3 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let response = read_one_response(&mut stream);
        assert!(
            response.starts_with("HTTP/1.1 200 OK"),
            "round {round}: {response}"
        );
        assert!(
            response.contains("Connection: keep-alive\r\n"),
            "round {round} not persistent"
        );
        assert!(response.contains("\"status\":\"ok\""));
    }

    // An explicit `Connection: close` is honored: the response says close
    // and the server hangs up.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let response = read_one_response(&mut stream);
    assert!(response.contains("Connection: close\r\n"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "server should close after Connection: close"
    );

    // HTTP/1.0 defaults to close.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n")
        .unwrap();
    let response = read_one_response(&mut stream);
    assert!(response.contains("Connection: close\r\n"));

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn pipelined_requests_are_not_desynchronised_by_read_ahead() {
    // Two requests written back-to-back in a single TCP segment: the
    // server's per-connection read buffer must hand the second request to
    // the next parse intact (a throwaway buffer would swallow the
    // read-ahead bytes and desync the connection).
    let (addr, handle, server_thread) = start_server(ServerConfig::default());

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\nGET /models HTTP/1.1\r\nHost: t\r\n\r\n",
        )
        .unwrap();
    let first = read_one_response(&mut stream);
    assert!(first.contains("\"status\":\"ok\""), "{first}");
    let second = read_one_response(&mut stream);
    assert!(second.contains("\"models\":[]"), "{second}");

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn idle_connection_at_the_connection_cap_keeps_its_socket_when_nobody_waits() {
    // max_clients = 1: this connection holds the only slot. With no fresh
    // connection actually blocked in accept, the idle park must NOT give
    // the socket up (a free==0 check would self-defeat keep-alive exactly
    // at the cap); only a real waiter forces a yield.
    let (addr, handle, server_thread) = start_server(ServerConfig::default().with_max_clients(1));

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for round in 0..3 {
        // Sit idle past several idle-poll ticks before each request.
        thread::sleep(Duration::from_millis(400));
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let response = read_one_response(&mut stream);
        assert!(
            response.contains("Connection: keep-alive\r\n"),
            "round {round}: connection was dropped at the cap with no waiter: {response}"
        );
    }

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn error_responses_close_the_connection() {
    let (addr, handle, server_thread) = start_server(ServerConfig::default());

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .write_all(b"GET /models/ghost HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let response = read_one_response(&mut stream);
    assert!(response.starts_with("HTTP/1.1 404"));
    assert!(response.contains("Connection: close\r\n"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn client_pools_sockets_and_survives_server_idle_close() {
    // Short connection idle timeout so the server reaps the pooled socket
    // between two client calls.
    let config = ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let (addr, handle, server_thread) = start_server(config);

    let client = Client::new(addr);
    client
        .fit_model("m", "pattern_length=40", &sine_csv(2000))
        .unwrap();

    // Rapid-fire requests ride the pooled connection.
    for _ in 0..5 {
        let health = client.health().unwrap();
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    }

    // Let the server idle-close the pooled socket, then keep going: the
    // client must fall back to a fresh connection transparently.
    thread::sleep(Duration::from_millis(600));
    let scores = client.score("m", 120, &[vec![0.0; 500]]).unwrap();
    assert_eq!(scores.len(), 1);
    let health = client.health().unwrap();
    assert_eq!(health.get("models").unwrap().as_usize(), Some(1));

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn keep_alive_scores_are_bit_identical_to_in_process() {
    let (addr, handle, server_thread) = start_server(ServerConfig::default());
    let client = Client::new(addr);

    let csv = sine_csv(3000);
    client.fit_model("ka", "pattern_length=40", &csv).unwrap();

    let series: Vec<f64> = (0..700)
        .map(|i| (std::f64::consts::TAU * i as f64 / 80.0 + 0.3).sin())
        .collect();

    // Same request twice on the same pooled connection: identical bytes on
    // the wire, identical f64s after the round-trip.
    let first = client
        .score("ka", 160, std::slice::from_ref(&series))
        .unwrap();
    let second = client.score("ka", 160, &[series]).unwrap();
    let a = first[0].as_ref().unwrap();
    let b = second[0].as_ref().unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }

    handle.shutdown();
    server_thread.join().unwrap();
}
