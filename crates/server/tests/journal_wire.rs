//! Acceptance tests for the durable telemetry journal: a journaled server
//! streams flight-recorder samples, slow/error traces and warn-level log
//! lines (carrying their trace ids) into segment files that an offline
//! reader reconstructs; `GET /metrics/journal` exposes writer health; and
//! journaling never perturbs scoring — fit/score with the journal on is
//! bit-identical to the same fit/score with it off.

use std::path::PathBuf;
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use s2g_obs::journal::{read_dir_all, JournalEvent};
use s2g_server::{Client, Server, ServerConfig, ShutdownHandle};

/// The journal log sink and panic-hook targets are process-global (last
/// journaled server wins), so journaled servers in this binary must not
/// overlap — each test takes the lock for its whole server lifetime.
static JOURNAL_LOCK: Mutex<()> = Mutex::new(());

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s2g_journal_wire_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn start(config: ServerConfig) -> (String, ShutdownHandle, thread::JoinHandle<()>) {
    let server = Server::bind(config.with_addr("127.0.0.1:0")).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let thread = thread::spawn(move || server.run().unwrap());
    (addr, handle, thread)
}

fn sine_csv(n: usize, period: f64) -> String {
    (0..n)
        .map(|i| format!("{}\n", (std::f64::consts::TAU * i as f64 / period).sin()))
        .collect()
}

#[test]
fn journal_captures_samples_traces_and_correlated_logs() {
    let _guard = JOURNAL_LOCK.lock().unwrap();
    let dir = test_dir("capture");
    // Threshold 0 marks every request slow, so each one both journals its
    // finished trace and emits a warn log line inside the trace scope.
    let (addr, handle, server) = start(
        ServerConfig::default()
            .with_data_dir(&dir)
            .with_sample_interval_ms(10)
            .with_slow_request_ms(Some(0)),
    );
    let client = Client::new(addr);
    client.health().unwrap();
    assert!(client.list_models().unwrap().is_empty());
    // Let the sampler tick a few times so samples reach the journal.
    thread::sleep(Duration::from_millis(80));
    handle.shutdown();
    server.join().unwrap();

    // run() closed the journal and joined the writer: everything published
    // is on disk, checksummed, under <data-dir>/obs.
    let files = read_dir_all(&dir.join("obs")).unwrap();
    assert!(!files.is_empty(), "no journal segments written");
    assert!(
        files.iter().all(|f| !f.torn),
        "clean shutdown left a torn tail"
    );

    let events: Vec<&JournalEvent> = files.iter().flat_map(|f| &f.events).collect();
    let samples = events
        .iter()
        .filter(|e| matches!(e, JournalEvent::Sample(_)))
        .count();
    assert!(
        samples >= 2,
        "expected sampler ticks in the journal, got {samples}"
    );

    let trace_ids: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            JournalEvent::Trace(t) => Some(t.id),
            _ => None,
        })
        .collect();
    assert!(!trace_ids.is_empty(), "no finished traces journaled");

    // Logs ↔ traces: the slow-request warn line fired inside the request's
    // trace scope, so its journaled log event carries that trace's id.
    let correlated = events.iter().any(|e| match e {
        JournalEvent::Log(l) => l.trace_id != 0 && trace_ids.contains(&l.trace_id),
        _ => false,
    });
    assert!(
        correlated,
        "no warn log line correlated to a journaled trace id"
    );

    // Every segment carries the schema it was written under.
    for file in &files {
        assert!(!file.meta.schema.counters.is_empty());
        assert!(!file.meta.schema.histograms.is_empty());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_journal_endpoint_reports_writer_health() {
    let _guard = JOURNAL_LOCK.lock().unwrap();
    let dir = test_dir("endpoint");
    let (addr, handle, server) = start(ServerConfig::default().with_data_dir(&dir));
    let client = Client::new(addr);
    client.health().unwrap();
    let body = client.metrics_journal().unwrap();
    assert!(body.get("segments").unwrap().as_usize().unwrap() >= 1);
    assert!(body.get("bytes").unwrap().as_usize().unwrap() > 0);
    assert_eq!(body.get("dropped").unwrap().as_usize(), Some(0));
    handle.shutdown();
    server.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // Without a journal (no --data-dir) the endpoint is a clean 404.
    let (addr, handle, server) = start(ServerConfig::default());
    let client = Client::new(addr);
    assert!(client.metrics_journal().is_err());
    handle.shutdown();
    server.join().unwrap();
}

#[test]
fn scoring_is_bit_identical_with_journal_on_and_off() {
    let _guard = JOURNAL_LOCK.lock().unwrap();
    let dir = test_dir("identical");
    let csv = sine_csv(3000, 80.0);
    let probe: Vec<f64> = (0..600)
        .map(|i| (std::f64::consts::TAU * i as f64 / 80.0).sin())
        .collect();

    let score_with = |config: ServerConfig| -> Vec<f64> {
        let (addr, handle, server) = start(config);
        let client = Client::new(addr);
        client
            .fit_model("drill", "pattern_length=40", &csv)
            .unwrap();
        let scores = client
            .score("drill", 160, std::slice::from_ref(&probe))
            .unwrap()[0]
            .as_ref()
            .unwrap()
            .clone();
        handle.shutdown();
        server.join().unwrap();
        scores
    };

    let journaled = score_with(
        ServerConfig::default()
            .with_data_dir(&dir)
            .with_sample_interval_ms(10)
            .with_slow_request_ms(Some(0)),
    );
    let plain = score_with(ServerConfig::default().with_journal(false));
    assert_eq!(journaled.len(), plain.len());
    // Bit-identical, not approximately equal: journaling rides entirely
    // outside the scoring path.
    for (a, b) in journaled.iter().zip(plain.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    std::fs::remove_dir_all(&dir).ok();
}
