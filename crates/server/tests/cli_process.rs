//! Cross-process CLI acceptance tests: `s2g fit` in one process writes a
//! model file that a *separate* `s2g score` process loads and scores with
//! results identical to an in-process fit+score; and an `s2g serve` process
//! is driven end-to-end by `s2g client` / `s2g models` processes, ending
//! with a remote graceful shutdown.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use s2g_core::{S2gConfig, Series2Graph};
use s2g_timeseries::{io, TimeSeries};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("s2g_cli_process_{}_{name}", std::process::id()));
    dir
}

fn burst_series(n: usize, burst_at: usize) -> TimeSeries {
    let mut values: Vec<f64> = (0..n)
        .map(|i| (std::f64::consts::TAU * i as f64 / 100.0).sin())
        .collect();
    let end = (burst_at + 150).min(n);
    for (i, v) in values.iter_mut().enumerate().take(end).skip(burst_at) {
        *v = (std::f64::consts::TAU * i as f64 / 25.0).sin();
    }
    TimeSeries::from(values)
}

#[test]
fn separate_fit_and_score_processes_match_in_process_results() {
    let s2g = env!("CARGO_BIN_EXE_s2g");
    let input = tmp("input.csv");
    let model_path = tmp("model.s2g");
    let scores_path = tmp("scores.csv");

    let series = burst_series(4000, 2600);
    io::write_series(&input, &series).unwrap();

    // Process 1: fit + persist.
    let fit = Command::new(s2g)
        .args([
            "fit",
            "--input",
            input.to_str().unwrap(),
            "--output",
            model_path.to_str().unwrap(),
            "--pattern-length",
            "50",
        ])
        .output()
        .unwrap();
    assert!(
        fit.status.success(),
        "fit failed: {}",
        String::from_utf8_lossy(&fit.stderr)
    );

    // Process 2: load + score.
    let score = Command::new(s2g)
        .args([
            "score",
            "--model",
            model_path.to_str().unwrap(),
            "--query-length",
            "150",
            "--top-k",
            "1",
            "--scores-out",
            scores_path.to_str().unwrap(),
            input.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        score.status.success(),
        "score failed: {}",
        String::from_utf8_lossy(&score.stderr)
    );

    // Reference: everything in this process, no persistence involved.
    let model = Series2Graph::fit(&series, &S2gConfig::new(50)).unwrap();
    let expected = model.anomaly_scores(&series, 150).unwrap();

    let text = std::fs::read_to_string(&scores_path).unwrap();
    let written: Vec<f64> = text
        .lines()
        .skip(1)
        .map(|line| line.split(',').nth(1).unwrap().parse().unwrap())
        .collect();
    assert_eq!(written.len(), expected.len());
    for (i, (w, e)) in written.iter().zip(&expected).enumerate() {
        assert_eq!(
            w.to_bits(),
            e.to_bits(),
            "score {i} differs between cross-process and in-process runs"
        );
    }

    // The reported top anomaly must be the injected burst.
    let stdout = String::from_utf8_lossy(&score.stdout);
    let top_line = stdout.lines().next().expect("score printed no detections");
    let start: i64 = top_line.split('\t').nth(2).unwrap().parse().unwrap();
    assert!(
        (start - 2600).abs() < 250,
        "top anomaly at {start}, expected near 2600 (stdout: {stdout})"
    );

    // Corrupted model files must fail the process with a runtime error.
    let mut corrupt = std::fs::read(&model_path).unwrap();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    std::fs::write(&model_path, &corrupt).unwrap();
    let broken = Command::new(s2g)
        .args([
            "score",
            "--model",
            model_path.to_str().unwrap(),
            "--query-length",
            "150",
            input.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(broken.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&broken.stderr).contains("corrupted"),
        "stderr should name the corruption: {}",
        String::from_utf8_lossy(&broken.stderr)
    );

    for p in [&input, &model_path, &scores_path] {
        std::fs::remove_file(p).ok();
    }
}

/// Spawns `s2g serve` on an ephemeral port and waits for its readiness
/// line, returning the child process and the bound address.
fn spawn_server(s2g: &str) -> (Child, String) {
    spawn_server_with(s2g, &[])
}

/// Like [`spawn_server`], with extra `serve` flags appended.
fn spawn_server_with(s2g: &str, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(s2g)
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    // "s2g-server listening on 127.0.0.1:PORT"
    let addr = line
        .rsplit(' ')
        .next()
        .expect("readiness line with address")
        .trim()
        .to_string();
    (child, addr)
}

#[test]
fn serve_and_client_processes_roundtrip_and_shut_down() {
    let s2g = env!("CARGO_BIN_EXE_s2g");
    let input = tmp("serve_input.csv");
    let series = burst_series(3000, 1900);
    io::write_series(&input, &series).unwrap();

    let (mut server, addr) = spawn_server(s2g);

    // Fit remotely from a third process.
    let fit = Command::new(s2g)
        .args([
            "client",
            "fit",
            "--addr",
            &addr,
            "--name",
            "remote",
            "--input",
            input.to_str().unwrap(),
            "--pattern-length",
            "50",
        ])
        .output()
        .unwrap();
    assert!(
        fit.status.success(),
        "client fit failed: {}",
        String::from_utf8_lossy(&fit.stderr)
    );

    // `s2g models` sees the registered model.
    let models = Command::new(s2g)
        .args(["models", "--addr", &addr])
        .output()
        .unwrap();
    assert!(models.status.success());
    assert!(String::from_utf8_lossy(&models.stdout).contains("remote"));

    // Remote scoring finds the injected burst, exactly like a local score.
    let score = Command::new(s2g)
        .args([
            "client",
            "score",
            "--addr",
            &addr,
            "--name",
            "remote",
            "--query-length",
            "150",
            "--top-k",
            "1",
            input.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        score.status.success(),
        "client score failed: {}",
        String::from_utf8_lossy(&score.stderr)
    );
    let stdout = String::from_utf8_lossy(&score.stdout);
    let top_line = stdout.lines().next().expect("no detections printed");
    let start: i64 = top_line.split('\t').nth(2).unwrap().parse().unwrap();
    assert!(
        (start - 1900).abs() < 250,
        "remote top anomaly at {start}, expected near 1900"
    );

    // Remote graceful shutdown: the serve process exits cleanly.
    let stop = Command::new(s2g)
        .args(["client", "shutdown", "--addr", &addr])
        .output()
        .unwrap();
    assert!(stop.status.success());
    let status = server.wait().unwrap();
    assert!(status.success(), "serve process exited with {status:?}");

    std::fs::remove_file(&input).ok();
}

#[test]
fn serve_with_data_dir_persists_models_across_server_processes() {
    let s2g = env!("CARGO_BIN_EXE_s2g");
    let input = tmp("persist_input.csv");
    let data_dir = tmp("persist_store");
    std::fs::remove_dir_all(&data_dir).ok();
    let series = burst_series(2500, 1600);
    io::write_series(&input, &series).unwrap();
    let dir_arg = data_dir.to_str().unwrap().to_string();

    // Life 1: fit over the wire, then shut down.
    let (mut server, addr) = spawn_server_with(s2g, &["--data-dir", &dir_arg]);
    let fit = Command::new(s2g)
        .args([
            "client",
            "fit",
            "--addr",
            &addr,
            "--name",
            "durable",
            "--input",
            input.to_str().unwrap(),
            "--pattern-length",
            "50",
        ])
        .output()
        .unwrap();
    assert!(
        fit.status.success(),
        "client fit failed: {}",
        String::from_utf8_lossy(&fit.stderr)
    );
    let stop = Command::new(s2g)
        .args(["client", "shutdown", "--addr", &addr])
        .output()
        .unwrap();
    assert!(stop.status.success());
    assert!(server.wait().unwrap().success());

    // Offline: the store subcommands see the persisted model.
    let ls = Command::new(s2g)
        .args(["store", "ls", "--data-dir", &dir_arg, "--json"])
        .output()
        .unwrap();
    assert!(ls.status.success());
    let listing = String::from_utf8_lossy(&ls.stdout);
    assert!(
        listing.contains("\"name\":\"durable\""),
        "store ls --json lacks the model: {listing}"
    );
    let verify = Command::new(s2g)
        .args(["store", "verify", "--data-dir", &dir_arg])
        .output()
        .unwrap();
    assert!(
        verify.status.success(),
        "store verify failed: {}",
        String::from_utf8_lossy(&verify.stderr)
    );

    // Life 2: a fresh serve process on the same directory scores the model
    // without any refit, and `s2g models --json` lists it.
    let (mut server, addr) = spawn_server_with(s2g, &["--data-dir", &dir_arg]);
    let models = Command::new(s2g)
        .args(["models", "--addr", &addr, "--json"])
        .output()
        .unwrap();
    assert!(models.status.success());
    assert!(String::from_utf8_lossy(&models.stdout).contains("\"name\":\"durable\""));
    let score = Command::new(s2g)
        .args([
            "client",
            "score",
            "--addr",
            &addr,
            "--name",
            "durable",
            "--query-length",
            "150",
            "--top-k",
            "1",
            input.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        score.status.success(),
        "post-restart score failed: {}",
        String::from_utf8_lossy(&score.stderr)
    );
    let stdout = String::from_utf8_lossy(&score.stdout);
    let start: i64 = stdout
        .lines()
        .next()
        .expect("no detections printed")
        .split('\t')
        .nth(2)
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        (start - 1600).abs() < 250,
        "post-restart top anomaly at {start}, expected near 1600"
    );
    let stop = Command::new(s2g)
        .args(["client", "shutdown", "--addr", &addr])
        .output()
        .unwrap();
    assert!(stop.status.success());
    assert!(server.wait().unwrap().success());

    std::fs::remove_file(&input).ok();
    std::fs::remove_dir_all(&data_dir).ok();
}

#[test]
fn usage_errors_exit_with_code_two() {
    let s2g = env!("CARGO_BIN_EXE_s2g");
    let bad = Command::new(s2g).args(["frobnicate"]).output().unwrap();
    assert_eq!(bad.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("USAGE"));

    let help = Command::new(s2g).args(["help"]).output().unwrap();
    assert!(help.status.success());
    assert!(String::from_utf8_lossy(&help.stdout).contains("bench-throughput"));
}

/// One raw HTTP/1.1 request over a fresh connection; returns the full
/// response text ("" if the server dropped the connection mid-request,
/// which is exactly what a panicking handler does).
fn raw_request(addr: &str, method: &str, target: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let wire =
        format!("{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n");
    stream.write_all(wire.as_bytes()).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).ok();
    String::from_utf8_lossy(&response).into_owned()
}

fn obs(s2g: &str, args: &[&str]) -> String {
    let out = Command::new(s2g).arg("obs").args(args).output().unwrap();
    assert!(
        out.status.success(),
        "obs {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The crash drill: a journaled server is killed with SIGKILL mid-traffic,
/// and the offline `s2g obs` forensics still reconstruct the final window
/// from whatever reached disk — torn tails flagged, never fatal.
#[test]
fn crash_drill_obs_forensics_survive_sigkill() {
    let s2g = env!("CARGO_BIN_EXE_s2g");
    let data_dir = tmp("crash_drill");
    std::fs::remove_dir_all(&data_dir).ok();
    let dir = data_dir.to_str().unwrap().to_string();
    let (mut server, addr) = spawn_server_with(
        s2g,
        &[
            "--data-dir",
            &dir,
            "--sample-interval-ms",
            "5",
            "--slow-request-ms",
            "0",
            "--journal-segment-kb",
            "4",
        ],
    );

    // Paced so the 5 ms sampler ticks many times while traffic is live —
    // otherwise a release build answers all 50 requests inside one tick
    // and there are no samples to reconstruct.
    for _ in 0..50 {
        let response = raw_request(&addr, "GET", "/healthz");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        std::thread::sleep(std::time::Duration::from_millis(3));
    }
    // SIGKILL mid-traffic: no shutdown path runs, no writer flush, no
    // segment finalisation — whatever the journal fsynced is all there is.
    server.kill().unwrap();
    server.wait().unwrap();

    let ls = obs(s2g, &["ls", "--data-dir", &dir]);
    assert!(ls.contains("segment"), "{ls}");

    let report = obs(s2g, &["report", "--data-dir", &dir, "--window", "60"]);
    assert!(report.contains("journal report"), "{report}");
    // The sampler ticked every 5 ms across 50 requests: the retained
    // samples reconstruct the crash window's counters and percentiles.
    assert!(report.contains("sample(s) spanning"), "{report}");
    assert!(report.contains("GET /healthz"), "{report}");

    // Every trace survived with its route; grep narrows by substring.
    let grep = obs(
        s2g,
        &[
            "grep",
            "--data-dir",
            &dir,
            "--kind",
            "trace",
            "--route",
            "healthz",
        ],
    );
    assert!(grep.contains("GET /healthz"), "{grep}");

    // Export emits one JSON object per event.
    let export = obs(s2g, &["export", "--data-dir", &dir]);
    assert!(export
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(export.contains("\"kind\":\"sample\""));
    assert!(export.contains("\"kind\":\"trace\""));

    std::fs::remove_dir_all(&data_dir).ok();
}

/// The panic drill: an induced handler panic leaves a postmortem journal
/// holding the panic site and the in-flight trace — and the server keeps
/// serving other connections afterwards.
#[test]
fn panic_drill_writes_postmortem_with_in_flight_trace() {
    let s2g = env!("CARGO_BIN_EXE_s2g");
    let data_dir = tmp("panic_drill");
    std::fs::remove_dir_all(&data_dir).ok();
    let dir = data_dir.to_str().unwrap().to_string();
    let (mut server, addr) = spawn_server_with(s2g, &["--data-dir", &dir, "--debug-sleep"]);

    // The handler panics before writing a response: the connection just
    // drops. The panic hook runs before unwinding, draining the in-flight
    // trace into a postmortem file.
    let response = raw_request(&addr, "POST", "/debug/panic");
    assert!(
        response.is_empty(),
        "panicking handler answered: {response}"
    );

    let obs_dir = data_dir.join("obs");
    let postmortem_written = || {
        std::fs::read_dir(&obs_dir)
            .map(|entries| {
                entries
                    .flatten()
                    .any(|e| e.file_name().to_string_lossy().starts_with("postmortem-"))
            })
            .unwrap_or(false)
    };
    for _ in 0..100 {
        if postmortem_written() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(postmortem_written(), "no postmortem file appeared");

    // One worker panicked; the server is still up for everyone else.
    assert!(raw_request(&addr, "GET", "/healthz").starts_with("HTTP/1.1 200"));
    server.kill().unwrap();
    server.wait().unwrap();

    // The postmortem names the panic and carries the in-flight trace of
    // the very request that died, spans included.
    let files = s2g_obs::journal::read_dir_all(&obs_dir).unwrap();
    let postmortem = files
        .iter()
        .find(|f| f.postmortem)
        .expect("postmortem segment");
    let mut saw_panic = false;
    let mut saw_in_flight = false;
    for event in &postmortem.events {
        match event {
            s2g_obs::journal::JournalEvent::Panic(p) => {
                assert!(p.message.contains("induced panic"), "{}", p.message);
                assert!(p.location.contains("server"), "{}", p.location);
                saw_panic = true;
            }
            s2g_obs::journal::JournalEvent::Trace(t) if t.in_flight => {
                assert_eq!(t.route, "POST /debug/panic");
                assert!(t.spans.iter().any(|s| s.name == "about_to_panic"));
                saw_in_flight = true;
            }
            _ => {}
        }
    }
    assert!(saw_panic, "postmortem missing the panic event");
    assert!(saw_in_flight, "postmortem missing the in-flight trace");

    // `obs grep --kind panic` surfaces it offline too.
    let grep = obs(
        s2g,
        &[
            "grep",
            "--journal-dir",
            obs_dir.to_str().unwrap(),
            "--kind",
            "panic",
        ],
    );
    assert!(grep.contains("induced panic"), "{grep}");

    std::fs::remove_dir_all(&data_dir).ok();
}

/// `s2g top --once` with NO_COLOR set (or stdout piped, as here) renders a
/// plain frame: no ANSI clear/home escapes anywhere in the output.
#[test]
fn top_once_honors_no_color() {
    let s2g = env!("CARGO_BIN_EXE_s2g");
    let (mut server, addr) = spawn_server(s2g);

    let top = Command::new(s2g)
        .args(["top", "--addr", &addr, "--once"])
        .env("NO_COLOR", "1")
        .output()
        .unwrap();
    assert!(
        top.status.success(),
        "top failed: {}",
        String::from_utf8_lossy(&top.stderr)
    );
    let frame = String::from_utf8_lossy(&top.stdout);
    assert!(!frame.contains('\x1b'), "ANSI escapes despite NO_COLOR");
    assert!(!frame.is_empty());

    server.kill().unwrap();
    server.wait().unwrap();
}
