//! Restart-durability acceptance test for `serve --data-dir`: models
//! fitted over the wire survive a full server shutdown + restart on the
//! same directory — same checksums, bit-identical scores, no refitting —
//! and keep working under a lazy-load residency budget smaller than the
//! total embedding bytes.

use std::path::PathBuf;
use std::thread;

use s2g_server::{Client, Json, Server, ServerConfig, ShutdownHandle};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s2g_serve_persist_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn start(config: ServerConfig) -> (String, ShutdownHandle, thread::JoinHandle<()>) {
    let server = Server::bind(config.with_addr("127.0.0.1:0")).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let thread = thread::spawn(move || server.run().unwrap());
    (addr, handle, thread)
}

fn sine_csv(n: usize, period: f64) -> String {
    (0..n)
        .map(|i| format!("{}\n", (std::f64::consts::TAU * i as f64 / period).sin()))
        .collect()
}

fn probe(n: usize, period: f64) -> Vec<f64> {
    (0..n)
        .map(|i| (std::f64::consts::TAU * i as f64 / period).sin())
        .collect()
}

fn checksum_of(info: &Json) -> String {
    info.get("checksum").unwrap().as_str().unwrap().to_string()
}

#[test]
fn models_survive_restart_with_equal_checksums_and_bit_identical_scores() {
    let dir = test_dir("roundtrip");
    let periods = [80.0, 64.0, 48.0];
    let probe_series = probe(700, 70.0);

    // ---- First server life: fit three models over the wire. ----
    let (addr, handle, server_thread) = start(ServerConfig::default().with_data_dir(&dir));
    let client = Client::new(addr);
    let mut checksums = Vec::new();
    let mut expected_scores = Vec::new();
    for (i, period) in periods.iter().enumerate() {
        let info = client
            .fit_model(
                &format!("m{i}"),
                "pattern_length=40",
                &sine_csv(2200, *period),
            )
            .unwrap();
        checksums.push(checksum_of(&info));
        let scores = client
            .score(&format!("m{i}"), 150, std::slice::from_ref(&probe_series))
            .unwrap()
            .remove(0)
            .unwrap();
        expected_scores.push(scores);
    }
    let health = client.health().unwrap();
    assert_eq!(health.get("persistent"), Some(&Json::Bool(true)));
    assert_eq!(health.get("stored_models").unwrap().as_usize(), Some(3));
    assert!(health.get("uptime_secs").unwrap().as_usize().is_some());
    // Compatibility: the original liveness fields are still present.
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert!(health.get("workers").unwrap().as_usize().is_some());
    handle.shutdown();
    server_thread.join().unwrap();

    // ---- Second life: same directory, nothing refitted. ----
    let (addr, handle, server_thread) = start(ServerConfig::default().with_data_dir(&dir));
    let client = Client::new(addr);

    // The listing is served from the store manifest before any model is
    // loaded; fitted_at == 0 marks "persisted, not loaded this process".
    let listed = client.list_models().unwrap();
    assert_eq!(listed.len(), 3);
    for model in &listed {
        assert_eq!(model.get("fitted_at").unwrap().as_usize(), Some(0));
    }
    let health = client.health().unwrap();
    assert_eq!(health.get("models").unwrap().as_usize(), Some(0));
    assert_eq!(health.get("stored_models").unwrap().as_usize(), Some(3));

    for (i, (checksum, expected)) in checksums.iter().zip(&expected_scores).enumerate() {
        let name = format!("m{i}");
        // Checksums equal across the restart: bit-for-bit the same model.
        let info = client.model_info(&name).unwrap();
        assert_eq!(&checksum_of(&info), checksum, "checksum of {name}");
        // Scores equal to the last f64 bit: load-through, not refit.
        let scores = client
            .score(&name, 150, std::slice::from_ref(&probe_series))
            .unwrap()
            .remove(0)
            .unwrap();
        assert_eq!(scores.len(), expected.len());
        for (j, (e, g)) in expected.iter().zip(&scores).enumerate() {
            assert_eq!(
                e.to_bits(),
                g.to_bits(),
                "{name} score {j} differs after restart"
            );
        }
    }
    // Scoring faulted sections in: residency is now visible in /healthz.
    let health = client.health().unwrap();
    assert!(health.get("resident_bytes").unwrap().as_usize().unwrap() > 0);

    // Streaming sessions load through the store too.
    let session = client.open_session("m1", 160).unwrap();
    let emitted = client.push_session(&session, &probe(400, 64.0)).unwrap();
    assert_eq!(emitted.len(), 400 - 160 + 1);
    client.close_session(&session).unwrap();

    // Delete-through: the model is gone from the store as well.
    client.delete_model("m2").unwrap();
    handle.shutdown();
    server_thread.join().unwrap();

    // ---- Third life: the delete survived the restart. ----
    let (addr, handle, server_thread) = start(ServerConfig::default().with_data_dir(&dir));
    let client = Client::new(addr);
    let names: Vec<String> = client
        .list_models()
        .unwrap()
        .iter()
        .map(|m| m.get("name").unwrap().as_str().unwrap().to_string())
        .collect();
    assert_eq!(names, vec!["m0".to_string(), "m1".to_string()]);
    handle.shutdown();
    server_thread.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_scores_under_a_residency_budget_smaller_than_total_points() {
    let dir = test_dir("budget");
    let probe_series = probe(600, 60.0);

    let (addr, handle, server_thread) = start(ServerConfig::default().with_data_dir(&dir));
    let client = Client::new(addr);
    let mut expected = Vec::new();
    for (i, period) in [75.0, 54.0].iter().enumerate() {
        client
            .fit_model(
                &format!("b{i}"),
                "pattern_length=40",
                &sine_csv(2000, *period),
            )
            .unwrap();
        expected.push(
            client
                .score(&format!("b{i}"), 140, std::slice::from_ref(&probe_series))
                .unwrap()
                .remove(0)
                .unwrap(),
        );
    }
    handle.shutdown();
    server_thread.join().unwrap();

    // Each model's points section is ~(2000-40+1)×16B ≈ 31 KiB; 40 KiB
    // holds one model but not both, so serving both forces evictions.
    let budget = 40 * 1024;
    let (addr, handle, server_thread) = start(
        ServerConfig::default()
            .with_data_dir(&dir)
            .with_store_budget_bytes(budget),
    );
    let client = Client::new(addr);
    for round in 0..2 {
        for (i, expected) in expected.iter().enumerate() {
            let scores = client
                .score(&format!("b{i}"), 140, std::slice::from_ref(&probe_series))
                .unwrap()
                .remove(0)
                .unwrap();
            for (e, g) in expected.iter().zip(&scores) {
                assert_eq!(e.to_bits(), g.to_bits(), "b{i} round {round}");
            }
            let health = client.health().unwrap();
            let resident = health.get("resident_bytes").unwrap().as_usize().unwrap();
            assert!(
                resident as u64 <= budget,
                "resident {resident} exceeds budget {budget}"
            );
        }
    }
    handle.shutdown();
    server_thread.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
