//! Error-path coverage for every protocol failure class documented in
//! `docs/PROTOCOL.md`: malformed framing, oversized bodies, unknown
//! resources, semantically invalid inputs, and session idle eviction.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use s2g_server::{Client, ClientError, Server, ServerConfig, ShutdownHandle};

fn start_server(config: ServerConfig) -> (String, ShutdownHandle, thread::JoinHandle<()>) {
    let server = Server::bind(config.with_addr("127.0.0.1:0")).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let thread = thread::spawn(move || server.run().unwrap());
    (addr, handle, thread)
}

fn sine_csv(n: usize) -> String {
    (0..n)
        .map(|i| format!("{}\n", (std::f64::consts::TAU * i as f64 / 80.0).sin()))
        .collect()
}

/// Writes raw bytes to the server and returns the full response text.
fn raw_exchange(addr: &str, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(payload).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn api_error(result: Result<impl std::fmt::Debug, ClientError>) -> (u16, String) {
    match result {
        Err(ClientError::Api { status, code, .. }) => (status, code),
        other => panic!("expected ClientError::Api, got {other:?}"),
    }
}

#[test]
fn malformed_request_lines_get_400() {
    let (addr, handle, server_thread) = start_server(ServerConfig::default());

    let response = raw_exchange(&addr, b"THIS IS NOT HTTP\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 400 Bad Request"));
    assert!(response.contains("\"error\":\"malformed_request\""));

    let response = raw_exchange(&addr, b"GET /models SPDY/99\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 400"));

    // An unknown method gets 405 before routing.
    let response = raw_exchange(&addr, b"BREW /models HTTP/1.1\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 405"));
    assert!(response.contains("\"error\":\"method_not_allowed\""));

    // A known path with the wrong method also gets 405, from the router.
    let response = raw_exchange(&addr, b"DELETE /healthz HTTP/1.1\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 405"));

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn oversized_bodies_are_rejected_with_413() {
    let config = ServerConfig::default().with_max_body_bytes(1024);
    let (addr, handle, server_thread) = start_server(config);

    // Declared Content-Length beyond the cap: rejected before the body is
    // read — the client never needs to send the 1 MiB.
    let head = "PUT /models/big?pattern_length=50 HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n";
    let response = raw_exchange(&addr, head.as_bytes());
    assert!(response.starts_with("HTTP/1.1 413 Payload Too Large"));
    assert!(response.contains("\"error\":\"body_too_large\""));

    // Under the cap still works end to end (the cap, not the code path,
    // rejected the big one). 1000 bytes of CSV fit fine.
    let client = Client::new(addr);
    let result = client.fit_model("small", "pattern_length=50", &sine_csv(40));
    // Too short to *fit*, but accepted as a body: proves the 413 boundary.
    let (status, code) = api_error(result);
    assert_eq!((status, code.as_str()), (422, "series_too_short"));

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn unknown_models_and_endpoints_get_404() {
    let (addr, handle, server_thread) = start_server(ServerConfig::default());
    let client = Client::new(addr.clone());

    let (status, code) = api_error(client.score("ghost", 100, &[vec![0.0; 500]]));
    assert_eq!((status, code.as_str()), (404, "unknown_model"));

    let (status, code) = api_error(client.model_info("ghost"));
    assert_eq!((status, code.as_str()), (404, "unknown_model"));

    let (status, code) = api_error(client.delete_model("ghost"));
    assert_eq!((status, code.as_str()), (404, "unknown_model"));

    let (status, code) = api_error(client.open_session("ghost", 100));
    assert_eq!((status, code.as_str()), (404, "unknown_model"));

    let response = raw_exchange(&addr, b"GET /nope/nothing HTTP/1.1\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 404"));
    assert!(response.contains("\"error\":\"not_found\""));

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn invalid_inputs_get_400_or_422() {
    let (addr, handle, server_thread) = start_server(ServerConfig::default());
    let client = Client::new(addr.clone());
    client
        .fit_model("model", "pattern_length=50", &sine_csv(2000))
        .unwrap();

    // Scoring a series shorter than the model window (ℓ = 50): the
    // per-series slot reports the semantic error, in order.
    let results = client
        .score("model", 150, &[vec![0.0; 20], sine_csv_values(600)])
        .unwrap();
    let (code, _) = results[0].as_ref().unwrap_err();
    assert_eq!(code, "series_too_short");
    assert!(results[1].is_ok());

    // A query length below the pattern length is rejected per series too.
    let results = client.score("model", 10, &[sine_csv_values(600)]).unwrap();
    let (code, _) = results[0].as_ref().unwrap_err();
    assert_eq!(code, "query_too_short");

    // Missing / unparseable parameters.
    let response = client.request("PUT", "/models/m2", sine_csv(2000).as_bytes());
    let (status, code) = api_error(response.unwrap().into_result());
    assert_eq!((status, code.as_str()), (400, "bad_request"));

    let response = client.request("POST", "/models/model/score", b"1\n2\n");
    assert_eq!(response.unwrap().status, 400);

    // Unparseable CSV body.
    let result = client.fit_model("m3", "pattern_length=50", "1.0\nnot-a-number\n");
    let (status, code) = api_error(result);
    assert_eq!((status, code.as_str()), (400, "invalid_csv"));

    // A header line is tolerated by score exactly as it is by fit; an
    // unparseable value past line 1 is not.
    let with_header = format!(
        "value\n{}\n",
        sine_csv_values(600)
            .iter()
            .map(f64::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );
    let response = client
        .request(
            "POST",
            "/models/model/score?query_length=150",
            with_header.as_bytes(),
        )
        .unwrap()
        .into_result()
        .unwrap();
    assert_eq!(response.lines.len(), 1, "header line must not score");
    let response = client.request(
        "POST",
        "/models/model/score?query_length=150",
        b"1,2\n3,oops\n",
    );
    let (status, code) = api_error(response.unwrap().into_result());
    assert_eq!((status, code.as_str()), (400, "invalid_csv"));

    // An empty series is refused client-side before it can desynchronise
    // the batch indexing.
    let err = client
        .score("model", 150, &[vec![], sine_csv_values(600)])
        .unwrap_err();
    assert!(matches!(err, ClientError::Protocol(_)));

    // Invalid model names: 422, since they can never be registered or
    // stored (names double as store file names).
    for target in [
        "/models/bad%20name?pattern_length=50",
        "/models/..?pattern_length=50",
    ] {
        let response = client.request("PUT", target, b"1\n");
        let (status, code) = api_error(response.unwrap().into_result());
        assert_eq!((status, code.as_str()), (422, "invalid_name"), "{target}");
    }

    // Malformed session body.
    let response = client.request("POST", "/sessions", b"{not json");
    let (status, code) = api_error(response.unwrap().into_result());
    assert_eq!((status, code.as_str()), (400, "bad_request"));

    handle.shutdown();
    server_thread.join().unwrap();
}

fn sine_csv_values(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (std::f64::consts::TAU * i as f64 / 80.0).sin())
        .collect()
}

#[test]
fn idle_sessions_are_evicted_and_push_gets_404() {
    let config = ServerConfig::default().with_session_idle(Some(Duration::from_millis(80)));
    let (addr, handle, server_thread) = start_server(config);
    let client = Client::new(addr);
    client
        .fit_model("model", "pattern_length=40", &sine_csv(2000))
        .unwrap();

    // An active session survives as long as pushes keep arriving.
    let session = client.open_session("model", 160).unwrap();
    for _ in 0..3 {
        thread::sleep(Duration::from_millis(30));
        client.push_session(&session, &[0.1, 0.2]).unwrap();
    }

    // Once idle past the timeout, the sweeper evicts it and a later push
    // reports unknown_session.
    thread::sleep(Duration::from_millis(400));
    let (status, code) = api_error(client.push_session(&session, &[0.3]));
    assert_eq!((status, code.as_str()), (404, "unknown_session"));
    let health = client.health().unwrap();
    assert_eq!(health.get("sessions").unwrap().as_usize(), Some(0));

    handle.shutdown();
    server_thread.join().unwrap();
}
