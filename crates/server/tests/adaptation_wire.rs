//! End-to-end wire acceptance of the adaptation subsystem (ISSUE 4):
//!
//! * a session streaming a drifting baseline **with adaptation on** keeps
//!   anomaly contrast while the frozen model's scores degrade;
//! * **with adaptation off**, session scores remain bit-identical to the
//!   in-process frozen scorer (the pre-adaptation serving behaviour);
//! * the adapted model **survives a server restart** with its lineage
//!   intact and the exact published checksum;
//! * `GET /metrics` reports request, fit, score, session and adaptation
//!   counters.

use std::path::PathBuf;
use std::thread;

use s2g_core::{S2gConfig, Series2Graph, StreamingScorer};
use s2g_server::{Client, Json, Server, ServerConfig, ShutdownHandle};
use s2g_timeseries::io as ts_io;

fn start_server(config: ServerConfig) -> (String, ShutdownHandle, thread::JoinHandle<()>) {
    let server = Server::bind(config.with_addr("127.0.0.1:0")).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let thread = thread::spawn(move || server.run().unwrap());
    (addr, handle, thread)
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s2g_adapt_wire_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

// -- the mode-shift drift scenario (validated in s2g-adapt's tests) --------

const SEG: usize = 200;

fn pattern_a(i: usize) -> f64 {
    (std::f64::consts::TAU * i as f64 / 100.0).sin()
}

fn pattern_b(i: usize) -> f64 {
    let phi = std::f64::consts::TAU * i as f64 / 100.0;
    0.6 * phi.sin() + 0.55 * (2.0 * phi).sin()
}

fn mode_mix(n: usize, b_share: impl Fn(usize) -> f64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let seg = i / SEG;
            let h = (seg as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
            let u = (h % 1000) as f64 / 1000.0;
            if u < b_share(seg) {
                pattern_b(i)
            } else {
                pattern_a(i)
            }
        })
        .collect()
}

fn to_csv(values: &[f64]) -> String {
    values.iter().map(|v| format!("{v}\n")).collect()
}

fn grade(scores: &[(usize, f64)], anomaly: usize) -> (f64, f64) {
    let norm: Vec<f64> = scores
        .iter()
        .filter(|(s, _)| *s >= 7400 && (*s + 200 < anomaly || *s > anomaly + 150))
        .map(|&(_, v)| v)
        .collect();
    let anom: Vec<f64> = scores
        .iter()
        .filter(|(s, _)| *s >= anomaly - 20 && *s < anomaly + 50)
        .map(|&(_, v)| v)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    (mean(&norm), mean(&anom))
}

#[test]
fn adaptive_session_tracks_drift_frozen_stays_bit_identical_and_restart_keeps_lineage() {
    let dir = test_dir("lifecycle");
    let train = mode_mix(8000, |_| 0.08);
    let train_csv = to_csv(&train);

    let n = 9000;
    let segs = n / SEG;
    let mut stream = mode_mix(n, |seg| (seg as f64 / segs as f64).min(1.0));
    let anomaly = 8300usize;
    for (k, v) in stream[anomaly..anomaly + 100].iter_mut().enumerate() {
        *v = 0.8 * (std::f64::consts::TAU * k as f64 / 17.0).sin();
    }

    // In-process reference: the frozen scorer all comparisons anchor on.
    // parse(to_csv(x)) is bit-exact, so the server sees these very values.
    let parsed_train = ts_io::parse_series(&train_csv).unwrap();
    let reference = Series2Graph::fit(&parsed_train, &S2gConfig::new(50)).unwrap();
    let baseline = s2g_core::scoring::normality_profile(reference.train_contributions(), 50, 150);
    let baseline_mean = baseline.iter().sum::<f64>() / baseline.len() as f64;
    let mut frozen_reference = StreamingScorer::new(reference.clone(), 150).unwrap();
    let frozen_scores = frozen_reference.push_batch(&stream).unwrap();

    // ---- life 1: fit, stream frozen + adaptive over the wire ----
    let (published_checksum, parent_checksum) = {
        let (addr, handle, server_thread) =
            start_server(ServerConfig::default().with_data_dir(&dir));
        let client = Client::new(addr);

        let info = client
            .fit_model("live", "pattern_length=50", &train_csv)
            .unwrap();
        let parent_checksum = info
            .get("checksum")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert!(
            info.get("lineage").is_none(),
            "a pristine fit must not report lineage"
        );

        // Adaptation OFF: wire scores are bit-identical to the in-process
        // frozen scorer — the pre-adaptation behaviour, untouched.
        let session = client.open_session("live", 150).unwrap();
        let mut emitted = Vec::new();
        for block in stream.chunks(1000) {
            let (pairs, adapt) = client.push_session_detailed(&session, block).unwrap();
            assert!(adapt.is_none(), "frozen sessions report no adapt status");
            emitted.extend(pairs);
        }
        client.close_session(&session).unwrap();
        assert_eq!(emitted.len(), frozen_scores.len());
        for (wire, local) in emitted.iter().zip(&frozen_scores) {
            assert_eq!(wire.0, local.0);
            assert_eq!(
                wire.1.to_bits(),
                local.1.to_bits(),
                "adaptation off must stay bit-identical to the frozen scorer"
            );
        }

        // Adaptation ON: same stream through an adaptive session.
        let adapt_options = Json::obj([
            ("lambda", Json::from(0.1)),
            ("drift_window", Json::from(128usize)),
            ("drift_threshold", Json::from(1.0)),
            ("refit_buffer", Json::from(2000usize)),
            ("refit_cooldown", Json::from(1500usize)),
            ("publish_interval", Json::from(256usize)),
        ]);
        let session = client
            .open_session_with("live", 150, Some(adapt_options))
            .unwrap();
        let mut adapted = Vec::new();
        let mut last_status = None;
        let mut published = None;
        for block in stream.chunks(1000) {
            let (pairs, adapt) = client.push_session_detailed(&session, block).unwrap();
            adapted.extend(pairs);
            let status = adapt.expect("adaptive sessions report adapt status");
            if let Some(checksum) = status.get("published_checksum").and_then(Json::as_str) {
                published = Some(checksum.to_string());
            }
            last_status = Some(status);
        }
        client.close_session(&session).unwrap();

        let status = last_status.unwrap();
        let updates = status.get("updates").and_then(Json::as_usize).unwrap();
        assert!(updates > 1000, "the shifting mode keeps being accepted");
        assert!(
            status.get("drift").and_then(|d| d.get("shift")).is_some(),
            "push responses carry drift stats"
        );
        let published = published.expect("publish interval elapsed repeatedly");

        // Acceptance: adaptation keeps the anomaly clearly below the new
        // normal, while the frozen model's scores degrade and lose
        // contrast.
        let (frozen_normal, frozen_anomaly) = grade(&frozen_scores, anomaly);
        let (adaptive_normal, adaptive_anomaly) = grade(&adapted, anomaly);
        assert!(
            frozen_normal < 0.5 * baseline_mean,
            "frozen scores must degrade: {frozen_normal} vs baseline {baseline_mean}"
        );
        assert!(
            frozen_normal / frozen_anomaly.max(1e-9) < 1.3,
            "frozen contrast lost: {frozen_normal} vs {frozen_anomaly}"
        );
        assert!(
            adaptive_normal / adaptive_anomaly.max(1e-9) > 1.8,
            "adaptive contrast kept: {adaptive_normal} vs {adaptive_anomaly}"
        );

        // The registry now serves an adapted snapshot with lineage.
        let info = client.model_info("live").unwrap();
        let lineage = info.get("lineage").expect("adapted model exposes lineage");
        assert_eq!(
            lineage.get("parent_checksum").and_then(Json::as_str),
            Some(parent_checksum.as_str())
        );
        assert!(lineage.get("updates").and_then(Json::as_usize).unwrap() > 0);

        // Metrics: the satellite endpoint reports everything the ISSUE
        // asks for.
        let metrics = client.metrics().unwrap().join("\n");
        for needle in [
            "s2g_requests_total{route=\"PUT /models/{name}\",status=\"200\"} 1",
            "s2g_requests_total{route=\"POST /sessions/{id}/push\"",
            "s2g_fits_total 1",
            "s2g_sessions_opened_total 2",
            "s2g_sessions_open 0",
            "s2g_models_registered 1",
            "s2g_models_stored 1",
            "s2g_store_resident_bytes",
            "s2g_adapt_refits_total",
            "s2g_adapt_published_total",
        ] {
            assert!(
                metrics.contains(needle),
                "metrics lack {needle}:\n{metrics}"
            );
        }
        let updates_line = metrics
            .lines()
            .find(|l| l.starts_with("s2g_adapt_updates_total"))
            .unwrap();
        let total: u64 = updates_line.split(' ').nth(1).unwrap().parse().unwrap();
        assert_eq!(
            total as usize, updates,
            "metrics aggregate the session's updates"
        );

        handle.shutdown();
        server_thread.join().unwrap();
        (published, parent_checksum)
    };

    // ---- life 2: restart on the same data dir ----
    let (addr, handle, server_thread) = start_server(ServerConfig::default().with_data_dir(&dir));
    let client = Client::new(addr);
    let info = client.model_info("live").unwrap();
    // The restarted server serves exactly the last published snapshot
    // (equal checksum = bit-identical encoded model), lineage intact.
    assert_eq!(
        info.get("checksum").and_then(Json::as_str),
        Some(published_checksum.as_str()),
        "restart must serve the last published adapted snapshot"
    );
    let lineage = info
        .get("lineage")
        .expect("lineage survives the restart from the store");
    assert_eq!(
        lineage.get("parent_checksum").and_then(Json::as_str),
        Some(parent_checksum.as_str())
    );
    assert!(lineage.get("updates").and_then(Json::as_usize).unwrap() > 0);
    assert_eq!(
        lineage.get("lambda").and_then(Json::as_f64),
        Some(0.1),
        "lineage records the decay λ"
    );

    handle.shutdown();
    server_thread.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_endpoint_is_plain_text_and_counts_errors_too() {
    let (addr, handle, server_thread) = start_server(ServerConfig::default());
    let client = Client::new(addr);

    // A 404 and a healthz probe, then scrape.
    assert!(client.model_info("ghost").is_err());
    client.health().unwrap();
    let response = client.request("GET", "/metrics", b"").unwrap();
    assert_eq!(response.status, 200);
    let text = response.lines.join("\n");
    assert!(text.contains("s2g_requests_total{route=\"GET /models/{name}\",status=\"404\"} 1"));
    assert!(text.contains("s2g_requests_total{route=\"GET /healthz\",status=\"200\"} 1"));
    assert!(text.contains("s2g_fits_total 0"));
    assert!(text.contains("s2g_scored_series_total 0"));
    assert!(text.contains("s2g_workers"));
    assert!(text.contains("s2g_uptime_seconds"));
    // Wrong method on /metrics is a 405 like every other endpoint.
    let response = client.request("POST", "/metrics", b"").unwrap();
    assert_eq!(response.status, 405);

    handle.shutdown();
    server_thread.join().unwrap();
}
