//! Acceptance tests for the flight recorder and self-watch layer:
//! `/metrics/history` retention and its agreement with the live
//! `/metrics/json` snapshot, `/metrics/delta` windowing, the
//! `/metrics/json` golden shape, `X-S2g-Trace` on error responses,
//! bit-identical scoring with the sampler enabled, and the end-to-end
//! self-watch spike drill: steady traffic warms the watchdogs up, an
//! injected latency spike must drive `/watch` (and the `healthz`
//! `watch` field) to `anomalous`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use s2g_server::{Client, Json, Server, ServerConfig, ShutdownHandle};

fn start(config: ServerConfig) -> (String, ShutdownHandle, thread::JoinHandle<()>) {
    let server = Server::bind(config.with_addr("127.0.0.1:0")).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let thread = thread::spawn(move || server.run().unwrap());
    (addr, handle, thread)
}

fn sine_csv(n: usize, period: f64) -> String {
    (0..n)
        .map(|i| format!("{}\n", (std::f64::consts::TAU * i as f64 / period).sin()))
        .collect()
}

/// Sends raw bytes (not necessarily valid HTTP) and returns the whole
/// response text, so tests can exercise the unparsed-request path and
/// inspect response headers.
fn raw_exchange(addr: &str, wire: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(wire).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    String::from_utf8(response).unwrap()
}

fn raw_request(addr: &str, method: &str, target: &str, body: &str) -> String {
    raw_exchange(
        addr,
        format!(
            "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// The value of `header` in a raw response, if present.
fn header_value(response: &str, header: &str) -> Option<String> {
    let head = response.split("\r\n\r\n").next()?;
    head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.eq_ignore_ascii_case(header)
            .then(|| value.trim().to_string())
    })
}

/// Polls `probe` every 25 ms until it returns `Some`, panicking with
/// `what` after `timeout`.
fn wait_for<T>(timeout: Duration, what: &str, mut probe: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(value) = probe() {
            return value;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn history_last_sample_matches_live_metrics_snapshot() {
    let (addr, handle, server_thread) = start(ServerConfig::default().with_sample_interval_ms(100));
    let client = Client::new(addr);

    // 50 external requests; scrapes below stay in the internal family,
    // so the external cumulative state is frozen from here on.
    for _ in 0..50 {
        client.list_models().unwrap();
    }

    // Wait until the recorder has taken a sample *after* the traffic
    // finished: two retained samples and the full request count in the
    // newest one.
    let route_series = "s2g_request_duration_ns{route=\"GET /models\"}";
    let (last_summary, sample_count) = wait_for(
        Duration::from_secs(10),
        "a post-traffic flight-recorder sample",
        || {
            let history = client.metrics_history(0, 1).unwrap();
            let series = history.get("series")?.as_array()?;
            if series.len() < 2 {
                return None;
            }
            let schema = history.get("schema")?.get("histograms")?.as_array()?;
            let index = schema
                .iter()
                .position(|n| n.as_str() == Some(route_series))?;
            let last = series.last()?.get("histograms")?.as_array()?.get(index)?;
            (last.get("count")?.as_usize()? == 50).then(|| (last.clone(), series.len()))
        },
    );
    assert!(sample_count >= 2, "at least two samples retained");

    // The newest sample's cumulative summary must agree exactly with the
    // live snapshot — same histogram, frozen since traffic stopped.
    let live = client.metrics_json().unwrap();
    let live_route = live.get("requests").unwrap().get("GET /models").unwrap();
    for field in ["count", "sum_ns", "max_ns", "p50_ns", "p95_ns", "p99_ns"] {
        assert_eq!(
            last_summary.get(field).unwrap().as_usize(),
            live_route.get(field).unwrap().as_usize(),
            "history last sample and live /metrics/json disagree on {field}"
        );
    }

    // The windowed-delta endpoint becomes ready once samples span it and
    // reports the same total over an all-covering window.
    let delta = wait_for(Duration::from_secs(10), "delta readiness", || {
        let delta = client.metrics_delta(3600).unwrap();
        (delta.get("ready") == Some(&Json::Bool(true))).then_some(delta)
    });
    let windowed = delta.get("histograms").unwrap().get(route_series);
    if let Some(windowed) = windowed {
        assert!(windowed.get("count").unwrap().as_usize().unwrap() <= 50);
        assert!(windowed.get("per_sec").unwrap().as_f64().unwrap() > 0.0);
    }

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn metrics_json_golden_shape() {
    // Pin the top-level field names and JSON types of /metrics/json so
    // dashboards can rely on them; additions belong at the end, renames
    // are breaking.
    let (addr, handle, server_thread) = start(
        ServerConfig::default()
            .with_sample_interval_ms(200)
            .with_trace_ring(64)
            .with_slow_ring(8),
    );
    let client = Client::new(addr);
    client
        .fit_model("shape", "pattern_length=40", &sine_csv(2000, 80.0))
        .unwrap();

    let json = client.metrics_json().unwrap();
    let Json::Obj(pairs) = &json else {
        panic!("metrics_json must be an object");
    };
    let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "gauges",
            "requests",
            "internal",
            "stages",
            "slow_threshold_ms",
            "trace_ring",
            "slow_ring",
            "sampler"
        ],
        "top-level key set and order are pinned"
    );
    assert!(matches!(json.get("gauges"), Some(Json::Obj(_))));
    assert!(matches!(json.get("requests"), Some(Json::Obj(_))));
    assert!(matches!(json.get("internal"), Some(Json::Obj(_))));
    assert!(matches!(json.get("stages"), Some(Json::Obj(_))));
    assert!(matches!(
        json.get("slow_threshold_ms"),
        Some(Json::Null | Json::Num(_))
    ));
    // Satellite: configured ring sizes are reported.
    assert_eq!(json.get("trace_ring").unwrap().as_usize(), Some(64));
    assert_eq!(json.get("slow_ring").unwrap().as_usize(), Some(8));
    let sampler = json.get("sampler").unwrap();
    assert_eq!(sampler.get("interval_ms").unwrap().as_usize(), Some(200));
    assert!(sampler.get("retention").unwrap().as_usize().unwrap() >= 2);
    assert!(sampler.get("samples").is_some());

    // Every gauge the schema promises is present, numeric, and includes
    // the queue-depth gauge the recorder retains.
    let Some(Json::Obj(gauges)) = json.get("gauges") else {
        panic!("gauges must be an object");
    };
    for name in [
        "s2g_models_registered",
        "s2g_models_stored",
        "s2g_store_resident_bytes",
        "s2g_store_residency_evictions_total",
        "s2g_sessions_open",
        "s2g_workers",
        "s2g_pool_queue_depth_total",
        "s2g_accept_slots",
        "s2g_accept_slots_in_use",
        "s2g_accept_waiting",
        "s2g_uptime_seconds",
    ] {
        let value = gauges.iter().find(|(k, _)| k == name);
        assert!(
            matches!(value, Some((_, Json::Num(_)))),
            "gauge {name} missing or non-numeric"
        );
    }
    // Histogram summaries keep their 7-field shape.
    let fit_route = json
        .get("requests")
        .unwrap()
        .get("PUT /models/{name}")
        .unwrap();
    let Json::Obj(fields) = fit_route else {
        panic!("route summary must be an object");
    };
    let names: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        names,
        ["count", "sum_ns", "max_ns", "mean_ns", "p50_ns", "p95_ns", "p99_ns"],
        "histogram summary field set and order are pinned"
    );

    // Sampler disabled: the key stays, the value is null.
    handle.shutdown();
    server_thread.join().unwrap();
    let (addr, handle, server_thread) = start(ServerConfig::default().with_sample_interval_ms(0));
    let client = Client::new(addr);
    let json = client.metrics_json().unwrap();
    assert_eq!(json.get("sampler"), Some(&Json::Null));
    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn every_response_carries_a_trace_header_even_on_errors() {
    let (addr, handle, server_thread) = start(ServerConfig::default());

    // 404 unknown route.
    let response = raw_request(&addr, "GET", "/no-such-endpoint", "");
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    assert!(
        header_value(&response, "X-S2g-Trace").is_some(),
        "404 must carry a trace header:\n{response}"
    );

    // 405 method not allowed.
    let response = raw_request(&addr, "DELETE", "/healthz", "");
    assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    assert!(header_value(&response, "X-S2g-Trace").is_some());

    // 404 on a model that does not exist (handler-level error).
    let response = raw_request(&addr, "GET", "/models/ghost", "");
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    assert!(header_value(&response, "X-S2g-Trace").is_some());

    // Unparseable request line: the server answers 400 from the
    // pre-routing branch — historically the one path with no trace.
    let response = raw_exchange(&addr, b"THIS IS NOT HTTP\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    let trace_id =
        header_value(&response, "X-S2g-Trace").expect("unparsed requests must mint a trace");
    assert_eq!(trace_id.len(), 16);

    // The minted trace is retained and resolvable like any other.
    let client = Client::new(addr);
    let trace = client.trace(&trace_id).unwrap();
    assert_eq!(trace.get("route").unwrap().as_str(), Some("(unparsed)"));
    assert_eq!(trace.get("status").unwrap().as_usize(), Some(400));

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn scoring_is_bit_identical_with_recorder_enabled() {
    let csv = sine_csv(2000, 80.0);
    let probe: Vec<f64> = (0..600)
        .map(|i| (std::f64::consts::TAU * i as f64 / 70.0).sin())
        .collect();
    let mut outputs = Vec::new();
    for interval_ms in [0, 50] {
        let (addr, handle, server_thread) =
            start(ServerConfig::default().with_sample_interval_ms(interval_ms));
        let client = Client::new(addr);
        client.fit_model("bits", "pattern_length=40", &csv).unwrap();
        let results = client
            .score("bits", 120, std::slice::from_ref(&probe))
            .unwrap();
        outputs.push(results[0].as_ref().unwrap().clone());
        handle.shutdown();
        server_thread.join().unwrap();
    }
    assert_eq!(outputs[0].len(), outputs[1].len());
    for (i, (a, b)) in outputs[0].iter().zip(outputs[1].iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "score {i} differs with the sampler enabled: {a} vs {b}"
        );
    }
}

#[test]
fn history_watch_and_sleep_are_gated() {
    // Sampling off: the history/delta/watch endpoints 404; debug sleep
    // 404s unless its flag is set.
    let (addr, handle, server_thread) = start(ServerConfig::default().with_sample_interval_ms(0));
    let client = Client::new(addr.clone());
    for call in [
        client.metrics_history(0, 1),
        client.metrics_delta(60),
        client.watch(),
    ] {
        let err = call.unwrap_err();
        let s2g_server::ClientError::Api { status, .. } = err else {
            panic!("expected Api error, got {err:?}");
        };
        assert_eq!(status, 404);
    }
    let response = raw_request(&addr, "POST", "/debug/sleep?ms=1", "");
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    let health = client.health().unwrap();
    assert_eq!(health.get("watch").unwrap().as_str(), Some("disabled"));
    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn self_watch_flags_an_injected_latency_spike() {
    // Fast sampling so the drill completes quickly: 25 ms ticks, 40-tick
    // warm-up (~1 s), the artificial slow handler enabled.
    let (addr, handle, server_thread) = start(
        ServerConfig::default()
            .with_sample_interval_ms(25)
            .with_watch_warmup(40)
            .with_debug_sleep(true),
    );

    // Steady background traffic: one request every ~2 ms keeps every
    // sampler window populated during warm-up and after.
    let stop = Arc::new(AtomicBool::new(false));
    let driver = {
        let stop = Arc::clone(&stop);
        let addr = addr.clone();
        thread::spawn(move || {
            let client = Client::new(addr);
            while !stop.load(Ordering::Relaxed) {
                let _ = client.list_models();
                thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let client = Client::new(addr.clone());
    // Warm-up completes and the board settles at ok.
    let status = wait_for(Duration::from_secs(30), "self-watch warm-up", || {
        let status = client.watch().unwrap();
        (status.get("warmup").unwrap().get("complete") == Some(&Json::Bool(true))).then_some(status)
    });
    let signals = status.get("signals").unwrap().as_array().unwrap();
    assert_eq!(signals.len(), 3);
    for signal in signals {
        let scorer = signal.get("scorer").unwrap().as_str().unwrap();
        assert!(
            scorer == "s2g" || scorer == "robust-z",
            "unexpected scorer {scorer}"
        );
    }
    // Steady state holds: after a few more sampler ticks the board is ok
    // (never degraded/anomalous without a fault injected).
    thread::sleep(Duration::from_millis(300));
    let status = client.watch().unwrap();
    assert_eq!(
        status.get("state").unwrap().as_str(),
        Some("ok"),
        "steady-state traffic must stay ok: {}",
        status.encode()
    );
    let health = client.health().unwrap();
    assert_eq!(health.get("watch").unwrap().as_str(), Some("ok"));

    // Inject the spike: three threads hammer the artificial slow handler
    // so every 25 ms sampler window contains ≥1 thirty-millisecond
    // request, blowing the external p99 two orders of magnitude past its
    // warm-up band.
    let spiking = Arc::new(AtomicBool::new(true));
    let spikers: Vec<_> = (0..3)
        .map(|_| {
            let spiking = Arc::clone(&spiking);
            let addr = addr.clone();
            thread::spawn(move || {
                let client = Client::new(addr);
                while spiking.load(Ordering::Relaxed) {
                    let _ = client.request_ok("POST", "/debug/sleep?ms=30", b"");
                }
            })
        })
        .collect();

    let status = wait_for(
        Duration::from_secs(30),
        "the spike to be flagged anomalous",
        || {
            let status = client.watch().unwrap();
            (status.get("state").unwrap().as_str() == Some("anomalous")).then_some(status)
        },
    );
    // The latency signal is the one that fired.
    let p99_signal = status
        .get("signals")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .find(|s| s.get("name").unwrap().as_str() == Some("request_p99_ms"))
        .unwrap()
        .clone();
    assert_eq!(
        p99_signal.get("state").unwrap().as_str(),
        Some("anomalous"),
        "request_p99_ms must be the firing signal: {}",
        status.encode()
    );
    assert!(
        p99_signal.get("value").unwrap().as_f64().unwrap() > 10.0,
        "spiked p99 must reflect the 30 ms sleeps"
    );
    // healthz mirrors the watch verdict.
    let health = client.health().unwrap();
    assert_eq!(health.get("watch").unwrap().as_str(), Some("anomalous"));

    spiking.store(false, Ordering::Relaxed);
    for spiker in spikers {
        spiker.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    driver.join().unwrap();
    handle.shutdown();
    server_thread.join().unwrap();
}
