//! Wire-level chaos drills: failpoint injection, deadline budgets,
//! admission shedding, and degraded-mode serving, all exercised over real
//! sockets against in-process servers.
//!
//! The headline drill is the ISSUE acceptance scenario: with
//! `store.write.enospc` armed under concurrent scoring load, score routes
//! must keep answering bit-identical results (zero non-503 errors), fits
//! must degrade to typed 503s, no torn files may remain, and every
//! degradation/recovery/trigger must be visible in `/metrics`.
//!
//! Failpoint state is process-global, so every drill takes one shared
//! lock and starts from a clean all-disarmed slate.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use s2g_server::{Client, ClientError, Json, RetryPolicy, Server, ServerConfig, ShutdownHandle};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    s2g_failpoints::disarm_all();
    guard
}

fn start_server(config: ServerConfig) -> (String, ShutdownHandle, thread::JoinHandle<()>) {
    let server = Server::bind(config.with_addr("127.0.0.1:0")).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let thread = thread::spawn(move || server.run().unwrap());
    (addr, handle, thread)
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s2g_chaos_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn sine_csv(n: usize) -> String {
    (0..n)
        .map(|i| format!("{}\n", (std::f64::consts::TAU * i as f64 / 80.0).sin()))
        .collect()
}

fn probe_series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (std::f64::consts::TAU * i as f64 / 80.0).sin())
        .collect()
}

/// Arms (or disarms) one failpoint through the drill endpoint and returns
/// the resulting status object.
fn set_failpoint(client: &Client, pairs: &[(&str, Json)]) -> Json {
    let body = Json::obj(pairs.iter().map(|(k, v)| (*k, v.clone())));
    client
        .request_ok("POST", "/debug/failpoint", body.encode().as_bytes())
        .unwrap()
        .json_line(0)
        .unwrap()
}

/// First `/metrics` exposition line matching `name` (exact, labels and
/// all), parsed as an integer.
fn metric(lines: &[String], name: &str) -> Option<u64> {
    lines.iter().find_map(|line| {
        let (n, v) = line.rsplit_once(' ')?;
        (n == name).then(|| v.trim().parse().ok()).flatten()
    })
}

/// One raw HTTP/1.1 request with caller-controlled extra headers — the
/// `Client` never sets `X-S2g-Deadline-Ms`, the deadline drills must.
fn raw_request(
    addr: &str,
    method: &str,
    target: &str,
    headers: &[(&str, String)],
    body: &[u8],
) -> (u16, Vec<String>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut head = format!(
        "{method} {target} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let text = String::from_utf8_lossy(&response);
    let (head, body) = text.split_once("\r\n\r\n").unwrap();
    let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, body.lines().map(str::to_string).collect())
}

fn store_mode(client: &Client) -> String {
    client
        .health()
        .unwrap()
        .get("store_mode")
        .and_then(Json::as_str)
        .unwrap()
        .to_string()
}

/// Polls until `healthz` reports the wanted store mode or the deadline
/// passes (the recovery probe runs on a 100 ms cadence).
fn wait_for_store_mode(client: &Client, wanted: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        if store_mode(client) == wanted {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "store never reached mode {wanted:?}"
        );
        thread::sleep(Duration::from_millis(20));
    }
}

fn temp_debris(dir: &Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|entry| {
            let path = entry.unwrap().path();
            (path.extension().and_then(|e| e.to_str()) == Some("tmp"))
                .then(|| path.file_name().unwrap().to_string_lossy().into_owned())
        })
        .collect()
}

// ---------------------------------------------------------------------------
// the acceptance drill: ENOSPC mid-save under concurrent scoring load
// ---------------------------------------------------------------------------

#[test]
fn store_enospc_drill_serves_bit_identical_scores_while_degraded() {
    let _guard = lock();
    let dir = test_dir("enospc");
    let (addr, handle, server_thread) = start_server(
        ServerConfig::default()
            .with_data_dir(&dir)
            .with_failpoints("on"),
    );
    let client = Client::new(addr.clone());

    let train = sine_csv(2000);
    client
        .fit_model("drill", "pattern_length=40", &train)
        .unwrap();
    let probe = probe_series(500);
    let baseline = client
        .score("drill", 160, std::slice::from_ref(&probe))
        .unwrap()[0]
        .clone()
        .unwrap();
    assert_eq!(store_mode(&client), "read_write");

    // Every compiled failpoint is listed, disarmed, untriggered.
    let listing = client
        .request_ok("GET", "/debug/failpoint", b"")
        .unwrap()
        .json_line(0)
        .unwrap();
    let points = listing.get("failpoints").and_then(Json::as_array).unwrap();
    assert_eq!(points.len(), s2g_failpoints::NAMES.len());
    assert!(points
        .iter()
        .all(|p| p.get("action").and_then(Json::as_str) == Some("off")));

    // Concurrent score load running through the whole degraded window:
    // zero tolerated errors, every result bit-identical to the baseline.
    let stop = Arc::new(AtomicBool::new(false));
    let scored = Arc::new(AtomicU64::new(0));
    let loaders: Vec<_> = (0..3)
        .map(|_| {
            let client = Client::new(addr.clone());
            let probe = probe.clone();
            let baseline = baseline.clone();
            let stop = Arc::clone(&stop);
            let scored = Arc::clone(&scored);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let got = client
                        .score("drill", 160, std::slice::from_ref(&probe))
                        .unwrap();
                    assert_eq!(
                        got[0].as_ref().unwrap(),
                        &baseline,
                        "a degraded store must not change scores"
                    );
                    scored.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // The disk "dies": every store write now fails with ENOSPC mid-save.
    set_failpoint(
        &client,
        &[
            ("name", Json::from("store.write.enospc")),
            ("action", Json::from("error")),
        ],
    );

    // The first fit that reaches the disk trips the fault and flips the
    // store read-only; it surfaces as a server-side error, never a hang
    // or a torn file.
    let first = client.fit_model("casualty", "pattern_length=40", &train);
    assert!(first.is_err(), "a fit over a dead disk must not succeed");
    wait_for_store_mode(&client, "degraded", Duration::from_secs(5));

    // While degraded, fits are refused up-front with a typed 503.
    match client.fit_model("casualty2", "pattern_length=40", &train) {
        Err(ClientError::Unavailable { status, code, .. }) => {
            assert_eq!(status, 503);
            assert_eq!(code, "store_degraded");
        }
        other => panic!("expected 503 store_degraded, got {other:?}"),
    }

    // Resident models keep scoring through the outage (the loader threads
    // are asserting bit-identity on every response as this runs).
    thread::sleep(Duration::from_millis(300));
    let during = client
        .score("drill", 160, std::slice::from_ref(&probe))
        .unwrap()[0]
        .clone()
        .unwrap();
    assert_eq!(during, baseline);

    // `/watch` mirrors the healthz mode for dashboards.
    let watch = client.watch().unwrap();
    assert_eq!(
        watch.get("store_mode").and_then(Json::as_str),
        Some("degraded")
    );

    // The disk "recovers": disarm, and the background probe re-arms
    // writes within its 100 ms cadence.
    set_failpoint(
        &client,
        &[
            ("name", Json::from("store.write.enospc")),
            ("action", Json::from("off")),
        ],
    );
    wait_for_store_mode(&client, "read_write", Duration::from_secs(5));

    // Fits work again, and scoring never wavered.
    client
        .fit_model("recovered", "pattern_length=40", &train)
        .unwrap();
    stop.store(true, Ordering::Relaxed);
    for loader in loaders {
        loader.join().unwrap();
    }
    assert!(scored.load(Ordering::Relaxed) > 0, "load never scored");
    let after = client.score("drill", 160, &[probe]).unwrap()[0]
        .clone()
        .unwrap();
    assert_eq!(after, baseline);

    // Every phase of the drill is accounted for in `/metrics`.
    let lines = client.metrics().unwrap();
    assert!(
        metric(
            &lines,
            "s2g_failpoint_triggers_total{name=\"store.write.enospc\"}"
        )
        .unwrap()
            >= 1
    );
    assert!(metric(&lines, "s2g_store_degradations_total").unwrap() >= 1);
    assert!(metric(&lines, "s2g_store_recoveries_total").unwrap() >= 1);

    // No torn files: the failed save and the probe left no temp debris,
    // and the surviving models reopen bit-identically after a restart.
    handle.shutdown();
    server_thread.join().unwrap();
    assert_eq!(temp_debris(&dir), Vec::<String>::new());

    let (addr2, handle2, thread2) = start_server(ServerConfig::default().with_data_dir(&dir));
    let client2 = Client::new(addr2);
    let names: Vec<String> = client2
        .list_models()
        .unwrap()
        .iter()
        .map(|m| m.get("name").and_then(Json::as_str).unwrap().to_string())
        .collect();
    assert!(names.contains(&"drill".to_string()));
    assert!(names.contains(&"recovered".to_string()));
    assert!(
        !names.contains(&"casualty".to_string()),
        "the torn fit must not resurface from the manifest"
    );
    let reopened = client2.score("drill", 160, &[probe_series(500)]).unwrap()[0]
        .clone()
        .unwrap();
    assert_eq!(reopened, baseline);
    handle2.shutdown();
    thread2.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// deadlines: X-S2g-Deadline-Ms through the pool
// ---------------------------------------------------------------------------

#[test]
fn expired_deadline_skips_queued_work_and_is_counted() {
    let _guard = lock();
    let (addr, handle, server_thread) = start_server(ServerConfig::default());
    let client = Client::new(addr.clone());
    client
        .fit_model("dl", "pattern_length=40", &sine_csv(2000))
        .unwrap();
    let probe = probe_series(500);
    let baseline = client
        .score("dl", 160, std::slice::from_ref(&probe))
        .unwrap()[0]
        .clone()
        .unwrap();

    let body: String = probe
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",");

    // Already-expired budget: the task is skipped unrun and the slot
    // answers `deadline_exceeded`.
    let (status, lines) = raw_request(
        &addr,
        "POST",
        "/models/dl/score?query_length=160",
        &[("X-S2g-Deadline-Ms", "0".to_string())],
        body.as_bytes(),
    );
    assert_eq!(status, 200);
    let slot = Json::parse(&lines[0]).unwrap();
    assert_eq!(
        slot.get("error").and_then(Json::as_str),
        Some("deadline_exceeded")
    );

    // A session push with an expired budget answers a whole-request 503.
    let session = client.open_session("dl", 160).unwrap();
    let (status, lines) = raw_request(
        &addr,
        "POST",
        &format!("/sessions/{session}/push"),
        &[("X-S2g-Deadline-Ms", "0".to_string())],
        sine_csv(200).as_bytes(),
    );
    assert_eq!(status, 503);
    let error = Json::parse(&lines[0]).unwrap();
    assert_eq!(
        error.get("error").and_then(Json::as_str),
        Some("deadline_exceeded")
    );

    // A generous budget changes nothing: bit-identical to no header.
    let (status, lines) = raw_request(
        &addr,
        "POST",
        "/models/dl/score?query_length=160",
        &[("X-S2g-Deadline-Ms", "60000".to_string())],
        body.as_bytes(),
    );
    assert_eq!(status, 200);
    let slot = Json::parse(&lines[0]).unwrap();
    let scores: Vec<f64> = slot
        .get("scores")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    assert_eq!(scores, baseline);

    let lines = client.metrics().unwrap();
    assert!(metric(&lines, "s2g_pool_deadline_expired_total").unwrap() >= 2);

    handle.shutdown();
    server_thread.join().unwrap();
}

// ---------------------------------------------------------------------------
// admission gate: bounded queue, 429 + Retry-After, client retries
// ---------------------------------------------------------------------------

#[test]
fn admission_gate_sheds_with_retry_after_and_retrying_client_recovers() {
    let _guard = lock();
    let (addr, handle, server_thread) = start_server(
        ServerConfig::default()
            .with_engine(s2g_server::EngineConfig {
                workers: 1,
                ..Default::default()
            })
            .with_failpoints("on")
            .with_admission_queue(1),
    );
    let client = Client::new(addr.clone());
    client
        .fit_model("gate", "pattern_length=40", &sine_csv(2000))
        .unwrap();
    let probe = probe_series(500);

    // Slow every pool task down (the panic failpoint armed as `delay`
    // sleeps instead of unwinding), so a small batch holds a backlog the
    // single worker drains slowly and the gate has something to shed.
    set_failpoint(
        &client,
        &[
            ("name", Json::from("pool.task.panic")),
            ("action", Json::from("delay")),
            ("delay_ms", Json::from(300usize)),
        ],
    );
    let background = {
        let client = Client::new(addr.clone());
        let series: Vec<Vec<f64>> = (0..6).map(|_| probe.clone()).collect();
        thread::spawn(move || client.score("gate", 160, &series).unwrap())
    };

    // While the backlog sits queued, further pool-bound work is shed at
    // the door with `429 Retry-After` — a typed error, not a hang.
    let mut shed_seen = false;
    for _ in 0..100 {
        match client.score("gate", 160, std::slice::from_ref(&probe)) {
            Err(ClientError::Unavailable {
                status,
                code,
                retry_after,
                ..
            }) => {
                assert_eq!(status, 429);
                assert_eq!(code, "overloaded");
                assert_eq!(retry_after, Some(Duration::from_secs(1)));
                shed_seen = true;
                break;
            }
            Ok(_) => thread::sleep(Duration::from_millis(10)),
            Err(other) => panic!("expected 429 overloaded, got {other:?}"),
        }
    }
    assert!(shed_seen, "the admission gate never shed");

    // A retry-enabled client rides out the backlog: fits are PUT
    // (idempotent), so sheds are retried with backoff until admitted.
    let patient = Client::new(addr.clone()).with_retry(RetryPolicy {
        max_retries: 10,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_secs(1),
        budget: Duration::from_secs(20),
    });
    patient
        .fit_model("gate2", "pattern_length=40", &sine_csv(2000))
        .unwrap();

    set_failpoint(
        &client,
        &[
            ("name", Json::from("pool.task.panic")),
            ("action", Json::from("off")),
        ],
    );
    let background_scores = background.join().unwrap();
    assert!(background_scores.iter().all(Result::is_ok));

    let lines = client.metrics().unwrap();
    assert!(metric(&lines, "s2g_admission_shed_total").unwrap() >= 1);

    handle.shutdown();
    server_thread.join().unwrap();
}

// ---------------------------------------------------------------------------
// pool panic injection: typed error, surviving worker
// ---------------------------------------------------------------------------

#[test]
fn injected_task_panic_answers_typed_error_and_worker_survives() {
    let _guard = lock();
    let (addr, handle, server_thread) = start_server(ServerConfig::default().with_failpoints("on"));
    let client = Client::new(addr.clone());
    client
        .fit_model("boom", "pattern_length=40", &sine_csv(2000))
        .unwrap();
    let probe = probe_series(500);
    let baseline = client
        .score("boom", 160, std::slice::from_ref(&probe))
        .unwrap()[0]
        .clone()
        .unwrap();

    // Exactly one task panics (budget 1), then the failpoint disarms
    // itself.
    set_failpoint(
        &client,
        &[
            ("name", Json::from("pool.task.panic")),
            ("action", Json::from("panic")),
            ("budget", Json::from(1usize)),
        ],
    );
    let results = client
        .score("boom", 160, &[probe.clone(), probe.clone()])
        .unwrap();
    let panicked: Vec<&(String, String)> =
        results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert_eq!(panicked.len(), 1, "exactly one slot should have panicked");
    assert_eq!(panicked[0].0, "worker_panicked");
    let survived: Vec<&Vec<f64>> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
    assert_eq!(survived, vec![&baseline]);

    // The worker survived: the very next batch scores fully, identically.
    let again = client.score("boom", 160, &[probe]).unwrap();
    assert_eq!(again[0].as_ref().unwrap(), &baseline);

    let lines = client.metrics().unwrap();
    assert_eq!(metric(&lines, "s2g_pool_task_panics_total"), Some(1));
    assert!(
        metric(
            &lines,
            "s2g_failpoint_triggers_total{name=\"pool.task.panic\"}"
        )
        .unwrap()
            >= 1
    );

    handle.shutdown();
    server_thread.join().unwrap();
}

// ---------------------------------------------------------------------------
// drill endpoint gating, validation, and connection-level faults
// ---------------------------------------------------------------------------

#[test]
fn failpoint_endpoints_are_gated_validated_and_stall_budget_self_disarms() {
    let _guard = lock();

    // Without `--failpoints`, the drill surface does not exist.
    let (addr, handle, server_thread) = start_server(ServerConfig::default());
    let closed = Client::new(addr);
    let response = closed.request("GET", "/debug/failpoint", b"").unwrap();
    assert_eq!(response.status, 404);
    handle.shutdown();
    server_thread.join().unwrap();

    let (addr, handle, server_thread) = start_server(ServerConfig::default().with_failpoints("on"));
    let client = Client::new(addr.clone());

    // Unknown names are a typed 422, not a silent no-op.
    let response = client
        .request(
            "POST",
            "/debug/failpoint",
            Json::obj([
                ("name", Json::from("no.such.failpoint")),
                ("action", Json::from("error")),
            ])
            .encode()
            .as_bytes(),
        )
        .unwrap();
    assert_eq!(response.status, 422);
    assert!(response.lines[0].contains("unknown_failpoint"));

    // A budgeted connection-level fault: exactly one subsequent request
    // has its connection dropped mid-read, then the stall self-disarms.
    set_failpoint(
        &client,
        &[
            ("name", Json::from("net.read.stall")),
            ("action", Json::from("error")),
            ("budget", Json::from(1usize)),
        ],
    );
    // The drop closes the socket without a response; a fresh client makes
    // the failure deterministic (no pooled-connection retry masking it).
    let victim = Client::new(addr.clone());
    assert!(victim.health().is_err(), "the stalled request must fail");
    // Budget exhausted: service is back, and the trigger was counted.
    let healthy = Client::new(addr);
    assert_eq!(
        healthy
            .health()
            .unwrap()
            .get("status")
            .and_then(Json::as_str),
        Some("ok")
    );
    let status = healthy
        .request_ok("GET", "/debug/failpoint", b"")
        .unwrap()
        .json_line(0)
        .unwrap();
    let stall = status
        .get("failpoints")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .find(|p| p.get("name").and_then(Json::as_str) == Some("net.read.stall"))
        .cloned()
        .unwrap();
    assert_eq!(stall.get("triggers").and_then(Json::as_usize), Some(1));
    assert_eq!(stall.get("action").and_then(Json::as_str), Some("off"));

    handle.shutdown();
    server_thread.join().unwrap();
}
