//! Cross-socket acceptance tests: everything a remote client does through
//! `s2g-server` must be **bit-for-bit identical** to the same operation done
//! in-process, including under concurrent load.

use std::sync::Arc;
use std::thread;

use s2g_core::{S2gConfig, Series2Graph, StreamingScorer};
use s2g_engine::codec;
use s2g_server::{Client, Server, ServerConfig, ShutdownHandle};
use s2g_timeseries::io as ts_io;

/// Starts a server on an ephemeral loopback port; returns the client
/// address, a shutdown handle and the serving thread.
fn start_server(config: ServerConfig) -> (String, ShutdownHandle, thread::JoinHandle<()>) {
    let server = Server::bind(config.with_addr("127.0.0.1:0")).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let thread = thread::spawn(move || server.run().unwrap());
    (addr, handle, thread)
}

/// CSV text of a sine series with a doubled-frequency burst.
fn burst_csv(n: usize, burst_at: usize, phase: f64) -> String {
    (0..n)
        .map(|i| {
            let v = if (burst_at..burst_at + 150).contains(&i) {
                (std::f64::consts::TAU * i as f64 / 25.0 + phase).sin()
            } else {
                (std::f64::consts::TAU * i as f64 / 100.0 + phase).sin()
            };
            format!("{v}\n")
        })
        .collect()
}

#[test]
fn socket_fit_and_score_bit_identical_with_concurrent_clients() {
    let (addr, handle, server_thread) = start_server(ServerConfig::default());
    let train_csv = burst_csv(4000, 2600, 0.0);

    // In-process reference: same CSV text, same parser, same config.
    let train = ts_io::parse_series(&train_csv).unwrap();
    let reference = Series2Graph::fit(&train, &S2gConfig::new(50)).unwrap();

    // Remote fit from the posted CSV body.
    let client = Client::new(addr.clone());
    let info = client
        .fit_model("acceptance", "pattern_length=50", &train_csv)
        .unwrap();

    // The server's checksum is the FNV-1a trailer of the encoded model: a
    // match proves the *model* itself is bit-identical, not just the scores.
    let expected_checksum = format!("{:#018x}", codec::model_checksum(&reference));
    assert_eq!(
        info.get("checksum").unwrap().as_str().unwrap(),
        expected_checksum
    );
    assert_eq!(info.get("train_len").unwrap().as_usize(), Some(4000));

    // Six concurrent clients (> the required 4), each scoring a different
    // probe series over its own connection.
    let probes: Vec<Vec<f64>> = (0..6)
        .map(|k| {
            ts_io::parse_series(&burst_csv(1200 + 50 * k, 400 + 60 * k, 0.1 * k as f64))
                .unwrap()
                .into_vec()
        })
        .collect();
    let reference = Arc::new(reference);
    let workers: Vec<_> = probes
        .into_iter()
        .map(|probe| {
            let client = Client::new(addr.clone());
            let reference = Arc::clone(&reference);
            thread::spawn(move || {
                let remote = client
                    .score("acceptance", 150, std::slice::from_ref(&probe))
                    .unwrap();
                let remote = remote[0].as_ref().unwrap();
                let local = reference.anomaly_scores(&probe.into(), 150).unwrap();
                assert_eq!(remote.len(), local.len());
                for (r, l) in remote.iter().zip(&local) {
                    assert_eq!(
                        r.to_bits(),
                        l.to_bits(),
                        "socket score must be bit-identical to in-process score"
                    );
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn socket_batch_scoring_is_submission_ordered() {
    let (addr, handle, server_thread) = start_server(ServerConfig::default());
    let train_csv = burst_csv(3000, 1800, 0.0);
    let client = Client::new(addr);
    client
        .fit_model("batch", "pattern_length=40", &train_csv)
        .unwrap();

    // One request carrying five series of distinct lengths: results must
    // come back in submission order (index i ↔ series i).
    let batch: Vec<Vec<f64>> = (0..5)
        .map(|k| {
            ts_io::parse_series(&burst_csv(900 + 37 * k, 300, 0.2 * k as f64))
                .unwrap()
                .into_vec()
        })
        .collect();
    let results = client.score("batch", 120, &batch).unwrap();
    assert_eq!(results.len(), 5);
    for (k, result) in results.iter().enumerate() {
        let scores = result.as_ref().unwrap();
        assert_eq!(
            scores.len(),
            (900 + 37 * k) - 120 + 1,
            "result {k} must belong to series {k}"
        );
    }

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn socket_sessions_match_in_process_streaming() {
    let (addr, handle, server_thread) = start_server(ServerConfig::default());
    let train_csv = burst_csv(3000, 9999, 0.0); // no burst: clean train
    let stream_csv = burst_csv(700, 350, 0.05);
    let client = Client::new(addr);
    client
        .fit_model("streamed", "pattern_length=40", &train_csv)
        .unwrap();

    // In-process reference: StreamingScorer over the identical model.
    let train = ts_io::parse_series(&train_csv).unwrap();
    let model = Series2Graph::fit(&train, &S2gConfig::new(40)).unwrap();
    let mut reference = StreamingScorer::new(model, 160).unwrap();
    let values = ts_io::parse_series(&stream_csv).unwrap().into_vec();
    let expected = reference.push_batch(&values).unwrap();

    // Remote session, pushed in uneven chunks.
    let session = client.open_session("streamed", 160).unwrap();
    let mut emitted = Vec::new();
    for chunk in values.chunks(333) {
        emitted.extend(client.push_session(&session, chunk).unwrap());
    }
    assert_eq!(emitted.len(), expected.len());
    for ((rs, rv), (es, ev)) in emitted.iter().zip(&expected) {
        assert_eq!(rs, es);
        assert_eq!(
            rv.to_bits(),
            ev.to_bits(),
            "streamed normality must be bit-identical"
        );
    }
    assert_eq!(client.close_session(&session).unwrap(), values.len());

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn model_lifecycle_over_the_wire() {
    let (addr, handle, server_thread) = start_server(ServerConfig::default());
    let client = Client::new(addr);

    assert!(client.list_models().unwrap().is_empty());
    client
        .fit_model("alpha", "pattern_length=40", &burst_csv(2000, 9999, 0.0))
        .unwrap();
    client
        .fit_model("beta", "pattern_length=50", &burst_csv(2200, 9999, 0.3))
        .unwrap();

    // GET /models lists both, in registration order.
    let models = client.list_models().unwrap();
    let names: Vec<&str> = models
        .iter()
        .map(|m| m.get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(names, vec!["alpha", "beta"]);
    let fitted: Vec<usize> = models
        .iter()
        .map(|m| m.get("fitted_at").unwrap().as_usize().unwrap())
        .collect();
    assert!(fitted[0] < fitted[1]);

    // GET /models/{name} metadata agrees with the fit response.
    let beta = client.model_info("beta").unwrap();
    assert_eq!(beta.get("pattern_length").unwrap().as_usize(), Some(50));
    assert_eq!(beta.get("train_len").unwrap().as_usize(), Some(2200));
    assert!(beta
        .get("checksum")
        .unwrap()
        .as_str()
        .unwrap()
        .starts_with("0x"));

    // Health reflects the registry.
    let health = client.health().unwrap();
    assert_eq!(health.get("models").unwrap().as_usize(), Some(2));

    // DELETE removes exactly one model.
    client.delete_model("alpha").unwrap();
    let models = client.list_models().unwrap();
    assert_eq!(models.len(), 1);
    assert_eq!(models[0].get("name").unwrap().as_str(), Some("beta"));

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn graceful_shutdown_by_handle_and_by_endpoint() {
    // In-process SIGTERM-equivalent: flag + connect-to-self wakeup.
    let (addr, handle, server_thread) = start_server(ServerConfig::default());
    let client = Client::new(addr);
    client.health().unwrap();
    handle.shutdown();
    server_thread.join().unwrap();

    // Remote stop: POST /admin/shutdown.
    let (addr, _handle, server_thread) = start_server(ServerConfig::default());
    let client = Client::new(addr.clone());
    client.health().unwrap();
    client.shutdown_server().unwrap();
    server_thread.join().unwrap();
    // The listener is gone: new connections are refused.
    assert!(Client::new(addr).health().is_err());
}
