//! Acceptance tests for the observability surface added by s2g-obs:
//! `/metrics` latency histograms, `/metrics/json`, the `X-S2g-Trace`
//! response header, `/debug/trace/{id}` span trees, and `/debug/slow`
//! retention — plus the guarantee that scraping (`/healthz`, `/metrics`)
//! lands in the *internal* family and never skews serving latency.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::thread;

use s2g_server::{Client, Json, Server, ServerConfig, ShutdownHandle};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s2g_obs_wire_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn start(config: ServerConfig) -> (String, ShutdownHandle, thread::JoinHandle<()>) {
    let server = Server::bind(config.with_addr("127.0.0.1:0")).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let thread = thread::spawn(move || server.run().unwrap());
    (addr, handle, thread)
}

fn sine_csv(n: usize, period: f64) -> String {
    (0..n)
        .map(|i| format!("{}\n", (std::f64::consts::TAU * i as f64 / period).sin()))
        .collect()
}

/// Sends one raw HTTP/1.1 request and returns `(head, body)` so tests can
/// see response *headers* — the typed [`Client`] only exposes bodies.
fn raw_request(addr: &str, method: &str, target: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let wire = format!(
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(wire.as_bytes()).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let response = String::from_utf8(response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    (head.to_string(), body.to_string())
}

/// The value of `header` in a raw response head, if present.
fn header_value(head: &str, header: &str) -> Option<String> {
    head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.eq_ignore_ascii_case(header)
            .then(|| value.trim().to_string())
    })
}

#[test]
fn metrics_expose_latency_histograms_and_pool_gauges() {
    let (addr, handle, server_thread) = start(ServerConfig::default());
    let client = Client::new(addr);
    client
        .fit_model("obs", "pattern_length=40", &sine_csv(2000, 80.0))
        .unwrap();
    let probe: Vec<f64> = (0..600)
        .map(|i| (std::f64::consts::TAU * i as f64 / 70.0).sin())
        .collect();
    client.score("obs", 120, &[probe]).unwrap();

    let text = client.metrics().unwrap().join("\n");
    // Per-route request histogram: quantiles, count/sum/max, and a
    // cumulative bucket series ending in le="+Inf".
    for needle in [
        "s2g_request_duration_ns{route=\"PUT /models/{name}\",quantile=\"0.5\"}",
        "s2g_request_duration_ns{route=\"PUT /models/{name}\",quantile=\"0.95\"}",
        "s2g_request_duration_ns{route=\"PUT /models/{name}\",quantile=\"0.99\"}",
        "s2g_request_duration_ns_count{route=\"PUT /models/{name}\"} 1",
        "s2g_request_duration_ns_bucket{route=\"PUT /models/{name}\",le=\"+Inf\"} 1",
        "s2g_request_duration_ns_count{route=\"POST /models/{name}/score\"} 1",
        // Stage instruments recorded inside the pool workers.
        "s2g_fit_duration_ns_count 1",
        "s2g_score_duration_ns_count 1",
        "s2g_pool_queue_wait_ns_count",
        "s2g_pool_execute_ns_count",
        // New gauges.
        "s2g_accept_slots ",
        "s2g_pool_queue_depth{worker=\"0\"}",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn scrape_routes_land_in_the_internal_family_only() {
    let (addr, handle, server_thread) = start(ServerConfig::default());
    let client = Client::new(addr);
    client.health().unwrap();
    client.metrics().unwrap();
    // Second scrape observes the first one's recording.
    let text = client.metrics().unwrap().join("\n");
    assert!(
        text.contains("s2g_internal_request_duration_ns{route=\"GET /healthz\""),
        "healthz must be recorded in the internal family:\n{text}"
    );
    assert!(
        text.contains("s2g_internal_request_duration_ns{route=\"GET /metrics\""),
        "metrics scrapes must be recorded in the internal family:\n{text}"
    );
    assert!(
        !text.contains("s2g_request_duration_ns{route=\"GET /healthz\""),
        "scrape traffic must not pollute the serving-latency family:\n{text}"
    );
    assert!(
        !text.contains("s2g_request_duration_ns{route=\"GET /metrics\""),
        "scrape traffic must not pollute the serving-latency family:\n{text}"
    );

    handle.shutdown();
    server_thread.join().unwrap();
}

/// Span names of a trace fetched through `/debug/trace/{id}`, plus the
/// structural checks every well-formed tree must satisfy: exactly one
/// root (named `request`) and no dangling parent ids.
fn span_names(trace: &Json) -> Vec<String> {
    let spans = trace.get("spans").unwrap().as_array().unwrap();
    let ids: Vec<usize> = spans
        .iter()
        .map(|s| s.get("id").unwrap().as_usize().unwrap())
        .collect();
    let mut roots = 0;
    for span in spans {
        match span.get("parent").unwrap() {
            Json::Null => roots += 1,
            parent => {
                let parent = parent.as_usize().unwrap();
                assert!(ids.contains(&parent), "dangling parent {parent}");
            }
        }
    }
    assert_eq!(roots, 1, "span tree must have exactly one root");
    let root = spans
        .iter()
        .find(|s| matches!(s.get("parent").unwrap(), Json::Null))
        .unwrap();
    assert_eq!(root.get("name").unwrap().as_str(), Some("request"));
    spans
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap().to_string())
        .collect()
}

#[test]
fn trace_header_leads_to_a_server_pool_store_span_tree() {
    let dir = test_dir("trace");
    let (addr, handle, server_thread) = start(ServerConfig::default().with_data_dir(&dir));

    // Raw fit request so the response *headers* are visible. A single fit
    // runs inline on the request thread (no pool dispatch), so its tree is
    // server middleware → engine fit → store save.
    let (head, _) = raw_request(
        &addr,
        "PUT",
        "/models/traced?pattern_length=40",
        &sine_csv(2000, 80.0),
    );
    assert!(head.starts_with("HTTP/1.1 200"), "fit failed: {head}");
    let trace_id = header_value(&head, "X-S2g-Trace").expect("response must carry X-S2g-Trace");
    assert_eq!(trace_id.len(), 16, "trace id is 16 hex digits: {trace_id}");

    let client = Client::new(addr.clone());
    let trace = client.trace(&trace_id).unwrap();
    assert_eq!(
        trace.get("route").unwrap().as_str(),
        Some("PUT /models/{name}")
    );
    assert_eq!(trace.get("status").unwrap().as_usize(), Some(200));
    let names = span_names(&trace);
    for name in ["request", "engine.fit", "store.save"] {
        assert!(
            names.iter().any(|n| n == name),
            "missing span {name:?} in {names:?}"
        );
    }
    handle.shutdown();
    server_thread.join().unwrap();

    // Restart on the same directory: scoring now faults the model in from
    // the store and dispatches to the pool, so one trace crosses all three
    // layers — server middleware → store load → pool worker.
    let (addr, handle, server_thread) = start(ServerConfig::default().with_data_dir(&dir));
    let probe: String = sine_csv(600, 70.0).replace('\n', ",");
    let (head, _) = raw_request(
        &addr,
        "POST",
        "/models/traced/score?query_length=120",
        probe.trim_end_matches(','),
    );
    assert!(head.starts_with("HTTP/1.1 200"), "score failed: {head}");
    let trace_id = header_value(&head, "X-S2g-Trace").unwrap();
    let client = Client::new(addr);
    let trace = client.trace(&trace_id).unwrap();
    assert_eq!(
        trace.get("route").unwrap().as_str(),
        Some("POST /models/{name}/score")
    );
    let names = span_names(&trace);
    for name in ["request", "store.load", "pool.score"] {
        assert!(
            names.iter().any(|n| n == name),
            "missing span {name:?} in {names:?}"
        );
    }

    handle.shutdown();
    server_thread.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn debug_trace_rejects_bad_ids_and_misses() {
    let (addr, handle, server_thread) = start(ServerConfig::default());
    let client = Client::new(addr);

    // Malformed id: 400.
    let err = client.trace("not-hex").unwrap_err();
    let s2g_server::ClientError::Api { status, .. } = err else {
        panic!("expected Api error, got {err:?}");
    };
    assert_eq!(status, 400);

    // Well-formed but unknown id: 404.
    let err = client.trace("00000000deadbeef").unwrap_err();
    let s2g_server::ClientError::Api { status, .. } = err else {
        panic!("expected Api error, got {err:?}");
    };
    assert_eq!(status, 404);

    handle.shutdown();
    server_thread.join().unwrap();
}

#[test]
fn slow_retention_and_metrics_json_shapes() {
    // Threshold 0: every request counts as slow and is retained.
    let (addr, handle, server_thread) =
        start(ServerConfig::default().with_slow_request_ms(Some(0)));
    let client = Client::new(addr);
    client
        .fit_model("slow", "pattern_length=40", &sine_csv(2000, 80.0))
        .unwrap();
    client.health().unwrap();

    let slow = client.slow_traces().unwrap();
    assert_eq!(
        slow.get("slow_threshold_ms").unwrap().as_usize(),
        Some(0),
        "configured threshold must be reported"
    );
    let traces = slow.get("traces").unwrap().as_array().unwrap();
    assert!(!traces.is_empty(), "threshold 0 must retain every request");
    let fit_summary = traces
        .iter()
        .find(|t| t.get("route").unwrap().as_str() == Some("PUT /models/{name}"))
        .expect("fit request must be retained as slow");
    assert!(fit_summary.get("spans").unwrap().as_usize().unwrap() >= 2);

    // A slow summary's id resolves through /debug/trace/{id}.
    let id = fit_summary.get("trace").unwrap().as_str().unwrap();
    let full = client.trace(id).unwrap();
    assert_eq!(full.get("trace").unwrap().as_str(), Some(id));

    // /metrics/json mirrors the text endpoint with typed summaries.
    let json = client.metrics_json().unwrap();
    assert_eq!(json.get("slow_threshold_ms").unwrap().as_usize(), Some(0));
    assert!(json.get("gauges").unwrap().get("s2g_workers").is_some());
    let fit_route = json
        .get("requests")
        .unwrap()
        .get("PUT /models/{name}")
        .expect("fit route must appear in the external request family");
    assert_eq!(fit_route.get("count").unwrap().as_usize(), Some(1));
    for field in ["p50_ns", "p95_ns", "p99_ns", "max_ns", "mean_ns", "sum_ns"] {
        assert!(fit_route.get(field).is_some(), "missing {field}");
    }
    assert!(
        json.get("internal").unwrap().get("GET /healthz").is_some(),
        "healthz must appear in the internal family"
    );
    let stages = json.get("stages").unwrap();
    assert!(stages.get("s2g_fit_duration_ns").is_some());

    handle.shutdown();
    server_thread.join().unwrap();
}
