//! The `s2g` binary: CLI front-end of the Series2Graph detection engine
//! and its TCP serving layer (`serve` / `client` subcommands).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(s2g_server::cli::run(&args));
}
