//! The TCP listener, request router and endpoint handlers.
//!
//! One [`Server`] owns one [`Engine`] (model registry + worker pool) and one
//! [`SessionTable`], and serves them over a hand-rolled HTTP/1.1 subset
//! (see [`crate::http`]). Connections are handled thread-per-client behind a
//! bounded accept semaphore: at most `max_clients` handler threads run at
//! once, and the accept loop blocks (TCP backlog backpressure) when all
//! slots are taken.
//!
//! Shutdown is cooperative: a [`ShutdownHandle`] flips an atomic flag and
//! wakes the accept loop by connecting to the server's own address, after
//! which `run` stops accepting, joins every in-flight handler and the
//! session sweeper, and returns. `POST /admin/shutdown` triggers the same
//! path remotely.
//!
//! The full wire contract — endpoints, framing, error codes, a worked
//! byte-level example — is specified in `docs/PROTOCOL.md`.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use s2g_core::config::BandwidthRule;
use s2g_core::S2gConfig;
use s2g_engine::{AdaptConfig, Engine, EngineConfig, ModelInfo};
use s2g_obs::journal::{
    self, Journal, JournalConfig, JournalEvent, JournalThread, LogEvent, PanicEvent, TraceEvent,
};
use s2g_obs::{FinishedTrace, HistogramSnapshot, Obs, Recorder, SpanCtx, TraceId, TraceScope};
use s2g_store::{ModelStore, StoreConfig};
use s2g_timeseries::{io as ts_io, TimeSeries};

use crate::error::ApiError;
use crate::history;
use crate::http::{read_request, Method, ParseError, Request, Response};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::selfwatch::SelfWatch;
use crate::sessions::SessionTable;

/// Route patterns of external (serving) traffic; their latency feeds the
/// `s2g_request_duration_ns` histogram family. `POST /debug/sleep` is the
/// flag-gated artificial slow handler ([`ServerConfig::debug_sleep`]) —
/// external on purpose, so an injected spike lands in the serving
/// percentiles the self-watch scores. `POST /debug/panic` (same gate)
/// panics mid-handler to drill the postmortem path; it never completes,
/// so it can never skew any percentile.
pub(crate) const EXTERNAL_ROUTES: &[&str] = &[
    "GET /models",
    "PUT /models/{name}",
    "GET /models/{name}",
    "DELETE /models/{name}",
    "POST /models/{name}/score",
    "POST /sessions",
    "POST /sessions/{id}/push",
    "DELETE /sessions/{id}",
    "POST /admin/shutdown",
    "POST /debug/sleep",
    "POST /debug/panic",
];

/// Route patterns of internal traffic (liveness probes, scrapes, debug
/// endpoints), recorded under `s2g_internal_request_duration_ns` so a 1 Hz
/// scraper can never skew the serving percentiles it is reporting.
pub(crate) const INTERNAL_ROUTES: &[&str] = &[
    "GET /healthz",
    "GET /metrics",
    "GET /metrics/json",
    "GET /metrics/history",
    "GET /metrics/delta",
    "GET /watch",
    "GET /debug/trace/{id}",
    "GET /debug/slow",
    "GET /metrics/journal",
    "POST /debug/failpoint",
    "GET /debug/failpoint",
];

fn is_internal_route(pattern: &str) -> bool {
    INTERNAL_ROUTES.contains(&pattern)
}

/// Construction parameters for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7878`. Port `0` picks an ephemeral
    /// port (query it via [`Server::local_addr`]).
    pub addr: String,
    /// Configuration of the owned [`Engine`] (worker count, registry cap).
    pub engine: EngineConfig,
    /// Maximum concurrently served connections; further accepts wait.
    pub max_clients: usize,
    /// Maximum accepted request-body size in bytes (`413` beyond it).
    pub max_body_bytes: usize,
    /// Streaming sessions idle longer than this are evicted
    /// (`None` = never).
    pub session_idle: Option<Duration>,
    /// Per-connection socket read timeout (stalled peers are dropped).
    pub read_timeout: Duration,
    /// When set, a durable [`ModelStore`] is mounted at this directory:
    /// models already stored there are served without refitting
    /// (preload), every fit is persisted, and deletes remove the stored
    /// file too. `None` keeps the engine memory-only.
    pub data_dir: Option<PathBuf>,
    /// Residency budget of the mounted store in bytes (`0` = unbounded);
    /// only meaningful with `data_dir`.
    pub store_budget_bytes: u64,
    /// Process-wide log verbosity (`serve --log-level`).
    pub log_level: s2g_obs::Level,
    /// Emit JSON log lines instead of the human format
    /// (`serve --log-json`).
    pub log_json: bool,
    /// Requests at least this slow are retained in the slow-trace log and
    /// emitted as `warn` lines (`serve --slow-request-ms`); `None`
    /// disables slow-request capture.
    pub slow_request_ms: Option<u64>,
    /// Flight-recorder sampling interval in milliseconds
    /// (`serve --sample-interval-ms`); `0` disables the sampler thread,
    /// `/metrics/history` and the self-watch entirely.
    pub sample_interval_ms: u64,
    /// Maximum retained flight-recorder samples
    /// (`serve --history-retention`); memory stays fixed past it.
    pub history_retention: usize,
    /// Sampler ticks of warm-up telemetry collected before the
    /// self-watch scorers are fitted (`serve --watch-warmup`).
    pub watch_warmup: usize,
    /// Trace-ring capacity — how many finished traces
    /// `GET /debug/trace/{id}` can look up (`serve --trace-ring`).
    pub trace_ring: usize,
    /// Slow-trace retention depth (`serve --slow-ring`).
    pub slow_ring: usize,
    /// Enables `POST /debug/sleep?ms=` — an artificial slow handler for
    /// drills and self-watch acceptance tests — and `POST /debug/panic`,
    /// the postmortem drill. Off by default; the routes answer 404 when
    /// disabled.
    pub debug_sleep: bool,
    /// Streams telemetry (flight-recorder samples, slow/error traces,
    /// self-watch transitions, warn/error log lines) into the durable
    /// journal under `data_dir/obs/` (`serve --no-journal` turns it
    /// off). Only effective with [`ServerConfig::data_dir`] set — the
    /// journal shares the store's directory and durability discipline.
    pub journal: bool,
    /// Journal segment size in KiB: a segment rotates once it grows past
    /// this (`serve --journal-segment-kb`).
    pub journal_segment_kb: u64,
    /// Retained journal segments; the oldest is reclaimed past this
    /// (`serve --journal-segments`). Bounds disk to roughly
    /// `journal_segment_kb * journal_segments` KiB.
    pub journal_segments: usize,
    /// Failpoint spec applied at startup (`serve --failpoints`, or the
    /// `S2G_FAILPOINTS` env var), in the
    /// `name=action[;p=..][;budget=..]` grammar of
    /// [`s2g_failpoints::apply_spec`]; the literal `"on"` arms nothing.
    /// `Some` also enables the `POST /debug/failpoint` /
    /// `GET /debug/failpoint` drill endpoints; `None` (the default) keeps
    /// failure injection off and those routes answering 404.
    pub failpoints: Option<String>,
    /// Admission gate (`serve --admission-queue`): when greater than zero
    /// and the pool backlog (tasks admitted but not yet claimed by a
    /// worker) is at least this deep, pool-bound routes shed with
    /// `429 Retry-After` instead of queueing more work. `0` disables the
    /// gate.
    pub admission_queue: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            engine: EngineConfig::default(),
            max_clients: 64,
            max_body_bytes: 16 * 1024 * 1024,
            session_idle: Some(Duration::from_secs(300)),
            read_timeout: Duration::from_secs(30),
            data_dir: None,
            store_budget_bytes: 0,
            log_level: s2g_obs::Level::Info,
            log_json: false,
            slow_request_ms: None,
            sample_interval_ms: 1_000,
            history_retention: 600,
            watch_warmup: 60,
            trace_ring: Obs::TRACE_RING,
            slow_ring: Obs::SLOW_KEEP,
            debug_sleep: false,
            journal: true,
            journal_segment_kb: 1024,
            journal_segments: 8,
            failpoints: None,
            admission_queue: 0,
        }
    }
}

impl ServerConfig {
    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the concurrent-connection cap (minimum 1).
    pub fn with_max_clients(mut self, max_clients: usize) -> Self {
        self.max_clients = max_clients.max(1);
        self
    }

    /// Sets the request-body size cap in bytes.
    pub fn with_max_body_bytes(mut self, max_body_bytes: usize) -> Self {
        self.max_body_bytes = max_body_bytes;
        self
    }

    /// Sets the session idle timeout (`None` disables eviction).
    pub fn with_session_idle(mut self, session_idle: Option<Duration>) -> Self {
        self.session_idle = session_idle;
        self
    }

    /// Mounts a durable model store at `data_dir` (see
    /// [`ServerConfig::data_dir`]).
    pub fn with_data_dir(mut self, data_dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(data_dir.into());
        self
    }

    /// Sets the store residency budget in bytes (`0` = unbounded).
    pub fn with_store_budget_bytes(mut self, bytes: u64) -> Self {
        self.store_budget_bytes = bytes;
        self
    }

    /// Sets the process-wide log verbosity.
    pub fn with_log_level(mut self, level: s2g_obs::Level) -> Self {
        self.log_level = level;
        self
    }

    /// Switches log output to JSON lines.
    pub fn with_log_json(mut self, json: bool) -> Self {
        self.log_json = json;
        self
    }

    /// Sets the slow-request threshold in milliseconds (`None` disables
    /// slow-trace retention).
    pub fn with_slow_request_ms(mut self, ms: Option<u64>) -> Self {
        self.slow_request_ms = ms;
        self
    }

    /// Sets the flight-recorder sampling interval (`0` disables the
    /// sampler, history and self-watch).
    pub fn with_sample_interval_ms(mut self, ms: u64) -> Self {
        self.sample_interval_ms = ms;
        self
    }

    /// Sets the flight-recorder retention in samples (minimum 2).
    pub fn with_history_retention(mut self, samples: usize) -> Self {
        self.history_retention = samples.max(2);
        self
    }

    /// Sets the self-watch warm-up length in sampler ticks.
    pub fn with_watch_warmup(mut self, ticks: usize) -> Self {
        self.watch_warmup = ticks;
        self
    }

    /// Sets the trace-ring capacity (minimum 1).
    pub fn with_trace_ring(mut self, capacity: usize) -> Self {
        self.trace_ring = capacity.max(1);
        self
    }

    /// Sets the slow-trace retention depth (minimum 1).
    pub fn with_slow_ring(mut self, depth: usize) -> Self {
        self.slow_ring = depth.max(1);
        self
    }

    /// Enables the `POST /debug/sleep` artificial slow handler and the
    /// `POST /debug/panic` postmortem drill.
    pub fn with_debug_sleep(mut self, enabled: bool) -> Self {
        self.debug_sleep = enabled;
        self
    }

    /// Enables or disables the durable telemetry journal (on by default;
    /// effective only with a `data_dir`).
    pub fn with_journal(mut self, enabled: bool) -> Self {
        self.journal = enabled;
        self
    }

    /// Sets the journal segment size in KiB (minimum 4).
    pub fn with_journal_segment_kb(mut self, kb: u64) -> Self {
        self.journal_segment_kb = kb.max(4);
        self
    }

    /// Sets the journal segment retention count (minimum 2).
    pub fn with_journal_segments(mut self, segments: usize) -> Self {
        self.journal_segments = segments.max(2);
        self
    }

    /// Enables failpoints with the given spec (see
    /// [`ServerConfig::failpoints`]); `"on"` enables the drill endpoints
    /// without arming anything.
    pub fn with_failpoints(mut self, spec: impl Into<String>) -> Self {
        self.failpoints = Some(spec.into());
        self
    }

    /// Sets the admission-gate backlog threshold (`0` disables shedding).
    pub fn with_admission_queue(mut self, depth: usize) -> Self {
        self.admission_queue = depth;
        self
    }
}

/// Counting semaphore bounding concurrent connection-handler threads.
pub(crate) struct Slots {
    pub(crate) capacity: usize,
    state: Mutex<SlotState>,
    available: Condvar,
}

struct SlotState {
    free: usize,
    /// Acquirers currently blocked in [`Slots::acquire`] — i.e. fresh
    /// connections actually starving, as opposed to slots merely being
    /// held by idle keep-alive peers.
    waiting: usize,
    /// Idle connections that have claimed a yield (hang-up in progress)
    /// whose slot has not been released yet. Caps concurrent yields at the
    /// number of waiters, so one starving acceptor triggers one hang-up —
    /// not a thundering herd of every idle connection at once.
    yielding: usize,
}

impl Slots {
    fn new(count: usize) -> Self {
        Slots {
            capacity: count.max(1),
            state: Mutex::new(SlotState {
                free: count.max(1),
                waiting: 0,
                yielding: 0,
            }),
            available: Condvar::new(),
        }
    }

    /// `(slots in use, acquirers currently blocked)` — the accept-slot
    /// occupancy gauges `/metrics` samples at scrape time.
    pub(crate) fn occupancy(&self) -> (usize, usize) {
        let state = self.lock();
        (self.capacity - state.free, state.waiting)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SlotState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn acquire(&self) {
        let mut state = self.lock();
        while state.free == 0 {
            state.waiting += 1;
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
            state.waiting -= 1;
        }
        state.free -= 1;
    }

    fn release(&self) {
        let mut state = self.lock();
        state.free += 1;
        // Any freed slot satisfies one waiter, so one outstanding yield
        // credit (if any) is no longer needed.
        state.yielding = state.yielding.saturating_sub(1);
        drop(state);
        self.available.notify_one();
    }

    /// Claims a yield: `true` when a fresh connection is blocked in
    /// [`Slots::acquire`] and not enough hang-ups are already in flight to
    /// satisfy the waiters. Idle persistent connections poll this and hang
    /// up on `true`, so keep-alive can never starve fresh connections for
    /// longer than one idle-poll tick — while a fleet of idle keep-alive
    /// peers that merely *holds* every slot, with nobody waiting, keeps
    /// its connections, and one waiter costs one hang-up, not a
    /// thundering herd of all idle peers.
    fn claim_yield(&self) -> bool {
        let mut state = self.lock();
        if state.waiting > state.yielding {
            state.yielding += 1;
            true
        } else {
            false
        }
    }
}

/// RAII guard for one accept slot: releases on drop, so slots survive
/// handler panics and thread-spawn failures alike.
struct SlotGuard(Arc<Shared>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.slots.release();
    }
}

/// RAII guard keeping one request in the in-flight trace registry for
/// exactly as long as it is being handled. Panic ordering is the point:
/// the panic hook runs *before* unwinding, so it still sees the trace
/// registered; the guard then unregisters during unwind, keeping the
/// bounded registry from silting up with dead entries.
struct ActiveGuard<'a> {
    shared: &'a Shared,
    id: TraceId,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.shared.obs.active.unregister(self.id);
    }
}

/// State shared by the accept loop, handler threads, the sampler and
/// shutdown handles. Crate-visible so the flight-recorder collection
/// ([`crate::history`]) and the self-watch ([`crate::selfwatch`]) can
/// read the live instruments without widening the public API.
pub(crate) struct Shared {
    pub(crate) engine: Engine,
    pub(crate) sessions: SessionTable,
    pub(crate) metrics: Metrics,
    pub(crate) obs: Arc<Obs>,
    max_body_bytes: usize,
    read_timeout: Duration,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    pub(crate) slots: Slots,
    pub(crate) started: Instant,
    /// The flight recorder; `None` when sampling is disabled
    /// (`sample_interval_ms = 0`).
    pub(crate) recorder: Option<Arc<Recorder>>,
    /// The self-watch board; present exactly when the recorder is.
    pub(crate) watch: Option<SelfWatch>,
    debug_sleep: bool,
    /// Whether `--failpoints` was given: gates the
    /// `POST`/`GET /debug/failpoint` drill endpoints.
    failpoints: bool,
    /// Admission-gate backlog threshold; `0` disables shedding.
    admission_queue: usize,
    /// Requests shed by the admission gate (`429 overloaded`).
    shed: AtomicU64,
    /// The durable telemetry journal; `None` without a `data_dir` or with
    /// journaling disabled. Publishing is try-send load shedding — the
    /// serving path never blocks on it.
    pub(crate) journal: Option<Journal>,
    /// The journal writer thread, joined at the end of [`Server::run`].
    journal_thread: Mutex<Option<JournalThread>>,
}

impl Shared {
    /// Flips the shutdown flag and wakes the (possibly blocked) accept loop
    /// by connecting to the server's own port. A wildcard bind address
    /// (`0.0.0.0` / `::`) is not connectable on every platform, so the
    /// wake-up always targets the matching loopback address instead.
    fn trigger_shutdown(&self) {
        s2g_obs::info!("server", "shutdown requested");
        self.shutdown.store(true, Ordering::SeqCst);
        let mut wake_addr = self.local_addr;
        if wake_addr.ip().is_unspecified() {
            let loopback: std::net::IpAddr = if wake_addr.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            wake_addr.set_ip(loopback);
        }
        let _ = TcpStream::connect(wake_addr);
    }
}

/// A cloneable handle that shuts a running [`Server`] down from another
/// thread — the in-process equivalent of delivering SIGTERM.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Requests shutdown: the accept loop stops, in-flight requests finish,
    /// and [`Server::run`] returns. Idempotent.
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// Panic postmortems
// ---------------------------------------------------------------------------

/// Journaled servers registered for postmortem capture — weak, so a
/// dropped server never outlives its scope through the hook.
static PANIC_TARGETS: Mutex<Vec<Weak<Shared>>> = Mutex::new(Vec::new());
static PANIC_HOOK: Once = Once::new();

/// Registers a journaled server with the process-wide panic hook (chained
/// in front of the default hook, installed once per process).
fn register_panic_target(shared: &Arc<Shared>) {
    let mut targets = PANIC_TARGETS.lock().unwrap_or_else(|e| e.into_inner());
    targets.retain(|t| t.strong_count() > 0);
    targets.push(Arc::downgrade(shared));
    drop(targets);
    PANIC_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // A second panic inside the postmortem writer would abort the
            // process before the original panic even reports — swallow it
            // and let the chained hook speak.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                write_postmortems(info);
            }));
            previous(info);
        }));
    });
}

/// Drains the black box of every live journaled server into an atomic
/// `postmortem-<ts>.s2gj`: the panic itself, every in-flight trace (the
/// spans it had finished when the panic hit), the newest retained
/// flight-recorder samples, and the self-watch board.
fn write_postmortems(info: &std::panic::PanicHookInfo<'_>) {
    let message = if let Some(s) = info.payload().downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = info.payload().downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    let location = info.location().map_or_else(
        || "unknown".to_string(),
        |l| format!("{}:{}", l.file(), l.line()),
    );
    let targets: Vec<Weak<Shared>> = PANIC_TARGETS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    for target in targets {
        let Some(shared) = target.upgrade() else {
            continue;
        };
        let Some(journal) = &shared.journal else {
            continue;
        };
        let mut events = vec![JournalEvent::Panic(PanicEvent {
            wall_ms: journal::wall_ms_now(),
            message: message.clone(),
            location: location.clone(),
        })];
        for (id, route, spans) in shared.obs.active.snapshot() {
            events.push(JournalEvent::Trace(TraceEvent::from_in_flight(
                id, &route, &spans,
            )));
        }
        if let Some(recorder) = &shared.recorder {
            // The newest few samples reconstruct the final window offline.
            let samples = recorder.window(u64::MAX, 1);
            let skip = samples.len().saturating_sub(8);
            for sample in samples.into_iter().skip(skip) {
                events.push(JournalEvent::sample((*sample).clone()));
            }
        }
        if let Some(watch) = &shared.watch {
            events.extend(
                watch
                    .postmortem_events()
                    .into_iter()
                    .map(JournalEvent::Watch),
            );
        }
        let _ = journal::write_postmortem(journal.dir(), &history::build_schema(), &events);
    }
}

/// A bound (but not yet running) detection server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the engine, without serving yet. When
    /// [`ServerConfig::data_dir`] is set, the durable model store is
    /// mounted first: every model already persisted there is immediately
    /// servable (listing from the manifest, payloads faulted in lazily on
    /// first score) — restart durability without refitting.
    ///
    /// # Errors
    /// Propagates socket bind errors and store-mount failures.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        s2g_obs::log::set_level(config.log_level);
        s2g_obs::log::set_json(config.log_json);
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // One instrument registry for the whole stack, attached to every
        // layer before the first request can arrive.
        let obs = Arc::new(Obs::with_rings(
            EXTERNAL_ROUTES,
            INTERNAL_ROUTES,
            config.trace_ring,
            config.slow_ring,
        ));
        if let Some(ms) = config.slow_request_ms {
            obs.traces
                .set_slow_threshold_ns(ms.saturating_mul(1_000_000));
        }
        let mut engine = Engine::new(config.engine);
        engine.attach_obs(Arc::clone(&obs));
        if let Some(data_dir) = &config.data_dir {
            let store = ModelStore::open(
                data_dir,
                StoreConfig::default().with_resident_budget_bytes(config.store_budget_bytes),
            )
            .map_err(io::Error::other)?;
            store.attach_obs(Arc::clone(&obs));
            s2g_obs::info!(
                "server",
                "mounted model store at {} ({} model(s) on disk)",
                data_dir.display(),
                store.list().len()
            );
            engine.attach_storage(Arc::new(store));
        }
        s2g_obs::info!("server", "listening on {local_addr}");
        // Flight recorder + self-watch: both exist exactly when sampling
        // is on. The recorder's schema is frozen here, before the first
        // sample, so every retained sample stays positionally aligned.
        let (recorder, watch) = if config.sample_interval_ms > 0 {
            let recorder = Arc::new(Recorder::new(
                history::build_schema(),
                config.sample_interval_ms,
                config.history_retention.max(2),
            ));
            s2g_obs::info!(
                "server",
                "flight recorder on: {} ms interval, {} samples retained, self-watch warmup {} ticks",
                recorder.interval_ms(),
                recorder.retention(),
                config.watch_warmup
            );
            (Some(recorder), Some(SelfWatch::new(config.watch_warmup)))
        } else {
            (None, None)
        };
        // Durable telemetry journal: shares the store's directory (under
        // `obs/`) and its atomicity discipline. The schema frozen into
        // each segment is the same one the recorder uses, so offline
        // `s2g obs` forensics replay with positional alignment intact.
        let data_dir = config.journal.then(|| config.data_dir.clone()).flatten();
        let (journal, journal_thread) = if let Some(data_dir) = data_dir {
            let dir = data_dir.join("obs");
            let journal_config = JournalConfig {
                segment_bytes: config.journal_segment_kb.max(4) * 1024,
                max_segments: config.journal_segments.max(2),
                ..JournalConfig::new(&dir)
            };
            let (journal, thread) =
                Journal::open(journal_config, history::build_schema()).map_err(io::Error::other)?;
            s2g_obs::info!(
                "server",
                "telemetry journal on at {} ({} KiB segments, {} retained)",
                dir.display(),
                config.journal_segment_kb.max(4),
                config.journal_segments.max(2)
            );
            (Some(journal), Some(thread))
        } else {
            (None, None)
        };
        // Failpoints: apply the startup spec before the first request can
        // arrive, and tee every trigger into the logs (and, through the
        // log sink below, the journal) so no injected fault goes
        // unaccounted for.
        if let Some(spec) = &config.failpoints {
            s2g_failpoints::apply_spec(spec)
                .map_err(|e| io::Error::other(format!("--failpoints: {e}")))?;
            s2g_failpoints::set_trigger_hook(Arc::new(|name, kind| {
                s2g_obs::warn!("failpoints", "failpoint {name} fired ({kind})");
            }));
            s2g_obs::info!("server", "failpoints enabled (spec {spec:?})");
        }
        if config.admission_queue > 0 {
            s2g_obs::info!(
                "server",
                "admission gate on: shedding past {} queued pool tasks",
                config.admission_queue
            );
        }
        let shared = Arc::new(Shared {
            engine,
            sessions: SessionTable::new(config.session_idle),
            metrics: Metrics::default(),
            obs,
            max_body_bytes: config.max_body_bytes,
            read_timeout: config.read_timeout,
            shutdown: AtomicBool::new(false),
            local_addr,
            slots: Slots::new(config.max_clients),
            started: Instant::now(),
            recorder,
            watch,
            debug_sleep: config.debug_sleep,
            failpoints: config.failpoints.is_some(),
            admission_queue: config.admission_queue,
            shed: AtomicU64::new(0),
            journal,
            journal_thread: Mutex::new(journal_thread),
        });
        if let Some(journal) = shared.journal.clone() {
            // Tee warn/error log lines into the journal. The sink is
            // process-global (last journaled server wins); a sink holding
            // a closed journal sheds harmlessly.
            s2g_obs::log::set_sink(Some(Arc::new(
                move |level, target: &str, msg: &str, t_ns, trace: Option<TraceId>| {
                    journal.publish(JournalEvent::Log(LogEvent {
                        wall_ms: journal::wall_ms_now(),
                        t_ns,
                        level,
                        target: target.to_string(),
                        msg: msg.to_string(),
                        trace_id: trace.map_or(0, |t| t.0),
                    }));
                },
            )));
            register_panic_target(&shared);
        }
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves port `0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The engine the server serves (e.g. to preload models before `run`).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// A handle that can stop [`Server::run`] from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until shutdown is requested: accepts connections (at most
    /// `max_clients` in flight), dispatches each to a handler thread, and
    /// reaps idle sessions in a background sweeper. Returns after every
    /// in-flight handler has finished.
    ///
    /// # Errors
    /// Propagates fatal accept errors (transient per-connection errors are
    /// swallowed).
    pub fn run(&self) -> io::Result<()> {
        let sweeper = self.spawn_sweeper();
        let sampler = self.spawn_sampler();
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();

        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue, // transient accept failure
            };
            self.shared.slots.acquire();
            // The guard releases the slot when the handler thread ends —
            // including by panic — so a handler bug can never leak slots
            // and wedge the accept loop. It also covers spawn failure.
            let slot = SlotGuard(Arc::clone(&self.shared));
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name("s2g-conn".to_string())
                .spawn(move || {
                    let _slot = slot;
                    handle_connection(&shared, stream);
                });
            if let Ok(handle) = handle {
                handlers.push(handle);
            }
            handlers.retain(|h| !h.is_finished());
        }

        for handle in handlers {
            let _ = handle.join();
        }
        if let Some(sweeper) = sweeper {
            let _ = sweeper.join();
        }
        if let Some(sampler) = sampler {
            let _ = sampler.join();
        }
        // Drain-then-exit: close the journal (publishes from here on shed)
        // and join the writer so every queued event reaches the segment
        // before run returns.
        if let Some(journal) = &self.shared.journal {
            journal.close();
        }
        if let Some(thread) = self
            .shared
            .journal_thread
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            thread.join();
        }
        Ok(())
    }

    /// Background thread reaping idle sessions until shutdown.
    fn spawn_sweeper(&self) -> Option<JoinHandle<()>> {
        let timeout = self.shared.sessions.idle_timeout()?;
        let shared = Arc::clone(&self.shared);
        let tick = (timeout / 4).clamp(Duration::from_millis(10), Duration::from_secs(1));
        std::thread::Builder::new()
            .name("s2g-sweeper".to_string())
            .spawn(move || {
                while !shared.shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    shared.sessions.evict_idle(&shared.engine);
                }
            })
            .ok()
    }

    /// Background sampler: every `sample_interval_ms` it freezes all
    /// instruments into the flight recorder and advances the self-watch.
    /// Runs entirely off the serving path — handlers never wait on it.
    fn spawn_sampler(&self) -> Option<JoinHandle<()>> {
        let recorder = Arc::clone(self.shared.recorder.as_ref()?);
        let shared = Arc::clone(&self.shared);
        let tick = Duration::from_millis(recorder.interval_ms());
        std::thread::Builder::new()
            .name("s2g-sampler".to_string())
            .spawn(move || {
                let mut prev: Option<Arc<s2g_obs::Sample>> = None;
                while !shared.shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let sample = history::collect_sample(&shared);
                    if let Some(journal) = &shared.journal {
                        journal.publish(JournalEvent::sample(sample.clone()));
                    }
                    recorder.push(sample);
                    let Some(current) = recorder.latest() else {
                        continue;
                    };
                    if let Some(watch) = &shared.watch {
                        watch.tick(&shared, prev.as_deref(), &current);
                    }
                    prev = Some(current);
                }
            })
            .ok()
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.shared.local_addr)
            .field("models", &self.shared.engine.registry().len())
            .field("sessions", &self.shared.sessions.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Connection handling and routing
// ---------------------------------------------------------------------------

/// What [`wait_for_request`] observed while a persistent connection sat
/// between requests.
enum IdleOutcome {
    /// Bytes of a next request are ready to be parsed.
    Ready,
    /// The peer closed, the idle timeout elapsed, the server is shutting
    /// down, or the socket failed — hang up either way.
    HangUp,
}

/// Parks a persistent connection until the next request arrives, the idle
/// timeout (`read_timeout`) elapses, the peer hangs up, or the server
/// starts shutting down. Polling with a short socket timeout keeps parked
/// keep-alive handlers from delaying shutdown by the full idle timeout.
///
/// `buffered` reports whether the connection's `BufReader` already holds
/// read-ahead bytes (a pipelined next request) — then there is nothing to
/// wait for and no socket to peek.
///
/// `yield_on_saturation` additionally hangs up when a fresh connection is
/// blocked waiting for an accept slot — set for parks *between* requests
/// (an idle keep-alive connection must not starve fresh connections),
/// never for a connection's first request (which must be served
/// regardless of contention).
fn wait_for_request(
    shared: &Shared,
    stream: &TcpStream,
    buffered: bool,
    yield_on_saturation: bool,
) -> IdleOutcome {
    if buffered {
        let _ = stream.set_read_timeout(Some(shared.read_timeout));
        return IdleOutcome::Ready;
    }
    let tick =
        (shared.read_timeout / 8).clamp(Duration::from_millis(20), Duration::from_millis(250));
    let deadline = Instant::now() + shared.read_timeout;
    let _ = stream.set_read_timeout(Some(tick));
    let mut probe = [0u8; 1];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return IdleOutcome::HangUp;
        }
        match stream.peek(&mut probe) {
            Ok(0) => return IdleOutcome::HangUp, // peer closed cleanly
            Ok(_) => {
                // Restore the full per-request stall guard before parsing.
                let _ = stream.set_read_timeout(Some(shared.read_timeout));
                return IdleOutcome::Ready;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= deadline {
                    return IdleOutcome::HangUp;
                }
                // Genuinely idle (the peek found nothing). When a fresh
                // connection is blocked waiting for a slot, an idle
                // slot-holding connection is pure starvation: give the
                // slot back (the peer's pooled client reconnects
                // transparently). Checked only after the peek so a
                // connection whose next request already arrived is served,
                // never dropped — and the claim caps hang-ups at the
                // number of actual waiters.
                if yield_on_saturation && shared.slots.claim_yield() {
                    return IdleOutcome::HangUp;
                }
            }
            Err(_) => return IdleOutcome::HangUp,
        }
    }
}

/// Serves one connection: a loop of request → response exchanges that
/// persists across requests for HTTP/1.1 peers (see `docs/PROTOCOL.md`).
/// The connection closes when the peer asks for it (`Connection: close`),
/// on any error response or unparseable request, after `read_timeout` of
/// idleness, or at server shutdown.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    // Request/response exchanges are strictly serial per connection, so
    // Nagle buys nothing and costs delayed-ACK stalls between the segments
    // of consecutive exchanges on a persistent connection.
    let _ = stream.set_nodelay(true);
    // One read buffer for the connection's whole life: read-ahead bytes of
    // a pipelined next request survive between requests (see
    // [`read_request`]). Writes go straight to the stream.
    let mut reader = std::io::BufReader::new(&stream);
    let mut first = true;
    loop {
        let buffered = !reader.buffer().is_empty();
        match wait_for_request(shared, &stream, buffered, !first) {
            IdleOutcome::Ready => {}
            IdleOutcome::HangUp => return,
        }
        // `net.read.stall`: armed as a delay it stalls the read here (then
        // proceeds normally); armed as an error it drops the connection,
        // the way a dying NIC or middlebox would.
        if s2g_failpoints::hit("net.read.stall").is_some() {
            return;
        }
        let request = match read_request(&mut reader, shared.max_body_bytes) {
            Ok(request) => request,
            Err(ParseError::ConnectionClosed) => return, // probe; nothing to say
            Err(ParseError::Io(_)) if !first => return,  // stalled mid-keep-alive
            Err(e) => {
                // Even an unparseable request gets a trace: the error
                // response carries `X-S2g-Trace` like every routed
                // response, so failed requests stay debuggable through
                // `GET /debug/trace/{id}` too.
                let started = Instant::now();
                let trace = shared.obs.start_trace();
                let mut root = trace.begin("request", None);
                root.attr("error", "unparsed");
                let mut response = ApiError::from(e).to_response();
                root.finish();
                let total_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                shared.metrics.record_request("(unparsed)", response.status);
                response.trace_id = Some(trace.id().to_string());
                let (finished, _) =
                    shared
                        .obs
                        .traces
                        .finish(&trace, "(unparsed)", response.status, total_ns);
                if let Some(journal) = &shared.journal {
                    journal.publish(JournalEvent::Trace(TraceEvent::from_finished(&finished)));
                }
                let _ = response.write_to(&stream);
                return;
            }
        };
        first = false;
        // Per-request middleware: mint a trace, open the root span, time
        // the dispatch, and record the latency under the route's family —
        // internal routes (probes, scrapes) are kept out of the serving
        // percentiles. The trace id travels back in the `X-S2g-Trace`
        // header, ready for `GET /debug/trace/{id}`.
        let started = Instant::now();
        let trace = shared.obs.start_trace();
        // The scope makes the trace id ambient for the request: every log
        // line emitted while handling it (any thread-local depth) carries
        // the id, correlating logs with the span tree. The registry makes
        // the trace visible to the panic hook — a handler panic drains it
        // into the postmortem with the spans it had finished so far; the
        // guard unregisters on the way out, unwinding included.
        let _trace_scope = TraceScope::enter(trace.id());
        shared
            .obs
            .active
            .register(format!("{} {}", request.method, request.path), &trace);
        let _active_guard = ActiveGuard {
            shared,
            id: trace.id(),
        };
        let mut root = trace.begin("request", None);
        root.attr("method", request.method.to_string());
        root.attr("path", request.path.clone());
        // The client's latency budget (`X-S2g-Deadline-Ms`) counts from
        // request arrival; it rides the span context into the pool, where
        // queued work that expires answers 503 without executing.
        let ctx = root.ctx().with_deadline(
            request
                .deadline_ms
                .map(|ms| started + Duration::from_millis(ms)),
        );
        let (pattern, result) = route(shared, &request, &ctx);
        let mut response = match result {
            Ok(response) => response,
            Err(e) => e.to_response(),
        };
        root.finish();
        let total_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let family = if is_internal_route(pattern) {
            &shared.obs.internal
        } else {
            &shared.obs.requests
        };
        family.get(pattern).record(total_ns);
        shared.metrics.record_request(pattern, response.status);
        response.trace_id = Some(trace.id().to_string());
        let (finished, slow) = shared
            .obs
            .traces
            .finish(&trace, pattern, response.status, total_ns);
        // Slow and error traces are the forensically interesting ones —
        // they go to the journal (shedding, never blocking).
        if slow || response.status >= 400 {
            if let Some(journal) = &shared.journal {
                journal.publish(JournalEvent::Trace(TraceEvent::from_finished(&finished)));
            }
        }
        if slow {
            s2g_obs::warn!(
                "server",
                "slow request: {} {} -> {} in {:.3} ms (trace {})",
                request.method,
                request.path,
                response.status,
                total_ns as f64 / 1e6,
                trace.id()
            );
        } else {
            s2g_obs::debug!(
                "server",
                "{} {} -> {} in {:.3} ms (trace {})",
                request.method,
                request.path,
                response.status,
                total_ns as f64 / 1e6,
                trace.id()
            );
        }
        // Error responses always close: the connection state after a
        // rejected request is not worth trusting. Success responses honor
        // the peer's persistence preference unless shutdown began.
        let keep_alive =
            request.keep_alive && response.status < 400 && !shared.shutdown.load(Ordering::SeqCst);
        if response.write_to_conn(&stream, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Dispatches one parsed request to its endpoint handler. Returns the
/// handler outcome together with the **normalised route pattern** the
/// request resolved to — the bounded label set `/metrics` counts requests
/// under (names never leak into labels). One match produces both, so the
/// dispatch table and the metrics labels can never drift apart.
#[allow(clippy::type_complexity)]
fn route(
    shared: &Shared,
    request: &Request,
    ctx: &SpanCtx,
) -> (&'static str, Result<Response, ApiError>) {
    use Method::{Delete, Get, Post, Put};
    let segments: Vec<&str> = request.segments.iter().map(String::as_str).collect();
    match (request.method, segments.as_slice()) {
        (Get, ["healthz"]) => ("GET /healthz", handle_healthz(shared)),
        (Get, ["metrics"]) => ("GET /metrics", handle_metrics(shared)),
        (Get, ["metrics", "json"]) => ("GET /metrics/json", handle_metrics_json(shared)),
        (Get, ["metrics", "history"]) => (
            "GET /metrics/history",
            handle_metrics_history(shared, request),
        ),
        (Get, ["metrics", "delta"]) => {
            ("GET /metrics/delta", handle_metrics_delta(shared, request))
        }
        (Get, ["metrics", "journal"]) => ("GET /metrics/journal", handle_metrics_journal(shared)),
        (Get, ["watch"]) => ("GET /watch", handle_watch(shared)),
        (Get, ["debug", "trace", id]) => ("GET /debug/trace/{id}", handle_debug_trace(shared, id)),
        (Get, ["debug", "slow"]) => ("GET /debug/slow", handle_debug_slow(shared)),
        (Post, ["debug", "sleep"]) => ("POST /debug/sleep", handle_debug_sleep(shared, request)),
        (Post, ["debug", "panic"]) => ("POST /debug/panic", handle_debug_panic(shared, ctx)),
        (Post, ["debug", "failpoint"]) => (
            "POST /debug/failpoint",
            handle_failpoint_set(shared, request),
        ),
        (Get, ["debug", "failpoint"]) => ("GET /debug/failpoint", handle_failpoint_list(shared)),
        (Get, ["models"]) => ("GET /models", handle_list_models(shared)),
        (Put, ["models", name]) => ("PUT /models/{name}", handle_fit(shared, name, request, ctx)),
        (Get, ["models", name]) => ("GET /models/{name}", handle_model_info(shared, name)),
        (Delete, ["models", name]) => ("DELETE /models/{name}", handle_delete_model(shared, name)),
        (Post, ["models", name, "score"]) => (
            "POST /models/{name}/score",
            handle_score(shared, name, request, ctx),
        ),
        (Post, ["sessions"]) => ("POST /sessions", handle_open_session(shared, request)),
        (Post, ["sessions", id, "push"]) => (
            "POST /sessions/{id}/push",
            handle_push_session(shared, id, request, ctx),
        ),
        (Delete, ["sessions", id]) => ("DELETE /sessions/{id}", handle_close_session(shared, id)),
        (Post, ["admin", "shutdown"]) => ("POST /admin/shutdown", handle_shutdown(shared)),
        // Known resource, wrong method.
        (
            _,
            ["healthz" | "metrics" | "models" | "watch"]
            | ["metrics", ..]
            | ["debug", ..]
            | ["models", ..]
            | ["sessions", ..]
            | ["admin", "shutdown"],
        ) => (
            "(method_not_allowed)",
            Err(ApiError::new(
                405,
                "method_not_allowed",
                format!("{} is not supported on {}", request.method, request.path),
            )),
        ),
        _ => (
            "(other)",
            Err(ApiError::not_found(format!(
                "no such endpoint: {}",
                request.path
            ))),
        ),
    }
}

/// Model names share the registry/store boundary rules
/// ([`s2g_engine::validate_model_name`]): 1–128 bytes of `[A-Za-z0-9._-]`,
/// not `"."`/`".."` — safe to reuse verbatim as store file names. A bad
/// name is a semantic (422) rejection on the wire.
fn validate_name(name: &str) -> Result<(), ApiError> {
    s2g_engine::validate_model_name(name)
        .map_err(|e| ApiError::new(422, "invalid_name", e.to_string()))
}

fn query_usize(request: &Request, key: &str) -> Result<Option<usize>, ApiError> {
    match request.query_param(key) {
        None => Ok(None),
        Some(raw) => raw.parse().map(Some).map_err(|_| {
            ApiError::bad_request(format!(
                "query parameter {key} expects an integer, got {raw:?}"
            ))
        }),
    }
}

fn required_query_usize(request: &Request, key: &str) -> Result<usize, ApiError> {
    query_usize(request, key)?
        .ok_or_else(|| ApiError::bad_request(format!("query parameter {key} is required")))
}

/// Builds an [`S2gConfig`] from `PUT /models/{name}` query parameters.
fn config_from_query(request: &Request) -> Result<S2gConfig, ApiError> {
    let pattern_length = required_query_usize(request, "pattern_length")?;
    let mut config = S2gConfig::new(pattern_length);
    if let Some(lambda) = query_usize(request, "lambda")? {
        config.lambda = lambda;
    }
    if let Some(rate) = query_usize(request, "rate")? {
        config.rate = rate;
    }
    if let Some(kde_grid) = query_usize(request, "kde_grid")? {
        config.kde_grid_points = kde_grid;
    }
    if let Some(raw) = request.query_param("sigma_ratio") {
        let ratio: f64 = raw.parse().map_err(|_| {
            ApiError::bad_request(format!("sigma_ratio expects a number, got {raw:?}"))
        })?;
        config.bandwidth = BandwidthRule::SigmaRatio(ratio);
    }
    if let Some(seed) = query_usize(request, "seed")? {
        config.seed = seed as u64;
    }
    if let Some(raw) = request.query_param("smooth") {
        config.smooth_scores = match raw {
            "true" | "1" => true,
            "false" | "0" => false,
            _ => {
                return Err(ApiError::bad_request(format!(
                    "smooth expects true|false, got {raw:?}"
                )))
            }
        };
    }
    config
        .validate()
        .map_err(|e| ApiError::new(400, "invalid_config", e.to_string()))?;
    Ok(config)
}

fn model_info_json(info: &ModelInfo) -> Json {
    Json::obj([
        ("name", Json::from(info.name.clone())),
        ("pattern_length", Json::from(info.pattern_length)),
        ("node_count", Json::from(info.node_count)),
        ("edge_count", Json::from(info.edge_count)),
        ("train_len", Json::from(info.train_len)),
        ("fitted_at", Json::from(info.fitted_at as usize)),
    ])
}

/// u64 checksums exceed what a JSON `f64` number can hold exactly, so the
/// protocol carries them as fixed-width hex strings.
fn checksum_string(checksum: u64) -> String {
    format!("{checksum:#018x}")
}

/// Appends one histogram's Prometheus-subset lines: `quantile` samples,
/// `_count`/`_sum`/`_max`, and cumulative `_bucket{le=...}` lines (only
/// non-empty buckets, closed by `le="+Inf"`). Empty histograms emit
/// nothing — a scrape never lists instruments that saw no traffic.
fn render_histogram(
    lines: &mut Vec<String>,
    name: &str,
    label: Option<(&str, &str)>,
    snap: &HistogramSnapshot,
) {
    if snap.count() == 0 {
        return;
    }
    let labels = |extra: Option<(&str, String)>| -> String {
        let mut parts = Vec::new();
        if let Some((k, v)) = label {
            parts.push(format!("{k}=\"{v}\""));
        }
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{v}\""));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    };
    for (q, tag) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
        lines.push(format!(
            "{name}{} {}",
            labels(Some(("quantile", tag.to_string()))),
            snap.quantile(q)
        ));
    }
    lines.push(format!("{name}_count{} {}", labels(None), snap.count()));
    lines.push(format!("{name}_sum{} {}", labels(None), snap.sum()));
    lines.push(format!("{name}_max{} {}", labels(None), snap.max()));
    for (le, cum) in snap.cumulative_buckets() {
        lines.push(format!(
            "{name}_bucket{} {cum}",
            labels(Some(("le", le.to_string())))
        ));
    }
    lines.push(format!(
        "{name}_bucket{} {}",
        labels(Some(("le", "+Inf".to_string()))),
        snap.count()
    ));
}

fn handle_metrics(shared: &Shared) -> Result<Response, ApiError> {
    let mut lines = shared.metrics.render(&history::sampled_gauges(shared));
    // Pool scheduler balance: per-worker executed/stolen task counters and
    // current queue depth. `stolen > 0` means the work-stealing scheduler
    // rebalanced a skewed batch; worker cardinality is bounded by the pool
    // size.
    let depths = shared.engine.queue_depths();
    for (worker, stats) in shared.engine.worker_stats().iter().enumerate() {
        lines.push(format!(
            "s2g_pool_tasks_executed_total{{worker=\"{worker}\"}} {}",
            stats.executed
        ));
        lines.push(format!(
            "s2g_pool_tasks_stolen_total{{worker=\"{worker}\"}} {}",
            stats.stolen
        ));
        lines.push(format!(
            "s2g_pool_queue_depth{{worker=\"{worker}\"}} {}",
            depths.get(worker).copied().unwrap_or(0)
        ));
    }
    // Robustness accounting: panic-isolated tasks, queued work that
    // expired, requests shed at the admission gate, store disk health,
    // and per-failpoint injected-fault counts.
    lines.push(format!(
        "s2g_pool_task_panics_total {}",
        shared.engine.task_panics()
    ));
    lines.push(format!(
        "s2g_pool_deadline_expired_total {}",
        shared.engine.deadline_expired()
    ));
    lines.push(format!(
        "s2g_admission_shed_total {}",
        shared.shed.load(Ordering::Relaxed)
    ));
    if let Some(storage) = shared.engine.storage() {
        lines.push(format!(
            "s2g_store_degradations_total {}",
            storage.degradations()
        ));
        lines.push(format!(
            "s2g_store_recoveries_total {}",
            storage.recoveries()
        ));
    }
    for status in s2g_failpoints::snapshot() {
        if status.triggers > 0 {
            lines.push(format!(
                "s2g_failpoint_triggers_total{{name=\"{}\"}} {}",
                status.name, status.triggers
            ));
        }
    }
    // Latency histograms: per-route request latency (external and
    // internal families kept apart) and the per-stage instruments.
    for (route, hist) in shared.obs.requests.iter() {
        render_histogram(
            &mut lines,
            "s2g_request_duration_ns",
            Some(("route", route)),
            &hist.snapshot(),
        );
    }
    for (route, hist) in shared.obs.internal.iter() {
        render_histogram(
            &mut lines,
            "s2g_internal_request_duration_ns",
            Some(("route", route)),
            &hist.snapshot(),
        );
    }
    for (name, hist) in shared.obs.stages() {
        render_histogram(&mut lines, name, None, &hist.snapshot());
    }
    Ok(Response::plain_text(lines))
}

/// One histogram snapshot as the `/metrics/json` object shape.
fn histogram_json(snap: &HistogramSnapshot) -> Json {
    Json::obj([
        ("count", Json::from(snap.count() as usize)),
        ("sum_ns", Json::from(snap.sum() as usize)),
        ("max_ns", Json::from(snap.max() as usize)),
        ("mean_ns", Json::from(snap.mean())),
        ("p50_ns", Json::from(snap.quantile(0.5) as usize)),
        ("p95_ns", Json::from(snap.quantile(0.95) as usize)),
        ("p99_ns", Json::from(snap.quantile(0.99) as usize)),
    ])
}

/// Non-empty histograms of a family as a `route → summary` JSON object.
fn family_json(family: &s2g_obs::Family) -> Json {
    Json::Obj(
        family
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(route, h)| (route.to_string(), histogram_json(&h.snapshot())))
            .collect(),
    )
}

fn handle_metrics_json(shared: &Shared) -> Result<Response, ApiError> {
    let gauges = Json::Obj(
        history::sampled_gauges(shared)
            .into_iter()
            .map(|(name, value)| (name.to_string(), Json::from(value as usize)))
            .collect(),
    );
    let stages = Json::Obj(
        shared
            .obs
            .stages()
            .into_iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(name, h)| (name.to_string(), histogram_json(&h.snapshot())))
            .collect(),
    );
    let threshold = shared.obs.traces.slow_threshold_ns();
    let sampler = match &shared.recorder {
        None => Json::Null,
        Some(recorder) => Json::obj([
            ("interval_ms", Json::from(recorder.interval_ms() as usize)),
            ("retention", Json::from(recorder.retention())),
            ("samples", Json::from(recorder.len())),
        ]),
    };
    let body = Json::obj([
        ("gauges", gauges),
        ("requests", family_json(&shared.obs.requests)),
        ("internal", family_json(&shared.obs.internal)),
        ("stages", stages),
        (
            "slow_threshold_ms",
            if threshold == u64::MAX {
                Json::Null
            } else {
                Json::from((threshold / 1_000_000) as usize)
            },
        ),
        ("trace_ring", Json::from(shared.obs.traces.capacity())),
        ("slow_ring", Json::from(shared.obs.traces.slow_keep())),
        ("sampler", sampler),
    ]);
    Ok(Response::ok(vec![body.encode()]))
}

/// `GET /metrics/history?window=&step=`: the flight recorder's retained
/// series (404 when sampling is disabled). `window` is in seconds
/// (0 / absent = everything retained); `step` keeps every Nth sample.
fn handle_metrics_history(shared: &Shared, request: &Request) -> Result<Response, ApiError> {
    let Some(recorder) = &shared.recorder else {
        return Err(ApiError::not_found(
            "flight recorder disabled (serve with --sample-interval-ms > 0)",
        ));
    };
    let window = query_usize(request, "window")?.unwrap_or(0) as u64;
    let step = query_usize(request, "step")?.unwrap_or(1).max(1);
    Ok(Response::ok(vec![history::history_json(
        recorder, window, step,
    )
    .encode()]))
}

/// `GET /metrics/delta?window=`: rates and windowed latency summaries over
/// the last `window` seconds of retained samples (default 60).
fn handle_metrics_delta(shared: &Shared, request: &Request) -> Result<Response, ApiError> {
    let Some(recorder) = &shared.recorder else {
        return Err(ApiError::not_found(
            "flight recorder disabled (serve with --sample-interval-ms > 0)",
        ));
    };
    let window = query_usize(request, "window")?.unwrap_or(60) as u64;
    Ok(Response::ok(vec![
        history::delta_json(recorder, window).encode()
    ]))
}

/// `GET /watch`: the self-watch board (404 when sampling is disabled).
fn handle_watch(shared: &Shared) -> Result<Response, ApiError> {
    let (Some(watch), Some(recorder)) = (&shared.watch, &shared.recorder) else {
        return Err(ApiError::not_found(
            "self-watch disabled (serve with --sample-interval-ms > 0)",
        ));
    };
    let mut body = watch.status_json(recorder);
    if let Json::Obj(pairs) = &mut body {
        pairs.push((
            "store_mode".to_string(),
            Json::from(
                shared
                    .engine
                    .storage()
                    .map_or("none", |s| s.mode().as_str()),
            ),
        ));
    }
    Ok(Response::ok(vec![body.encode()]))
}

/// `POST /debug/sleep?ms=`: an artificial slow handler for exercising the
/// latency instruments (gated behind `--debug-sleep`; 404 otherwise). The
/// sleep happens on the connection thread, so its full duration lands in
/// the external serving histograms like any genuinely slow request.
fn handle_debug_sleep(shared: &Shared, request: &Request) -> Result<Response, ApiError> {
    if !shared.debug_sleep {
        return Err(ApiError::not_found(
            "debug sleep disabled (serve with --debug-sleep)",
        ));
    }
    let ms = query_usize(request, "ms")?.unwrap_or(10).min(1_000);
    std::thread::sleep(Duration::from_millis(ms as u64));
    let body = Json::obj([("slept_ms", Json::from(ms))]);
    Ok(Response::ok(vec![body.encode()]))
}

/// `POST /debug/panic`: panics mid-handler to drill the postmortem path
/// (gated behind `--debug-sleep` with the other drill endpoint; 404
/// otherwise). One child span is finished *before* the panic, so the
/// postmortem's in-flight trace demonstrably carries the spans the
/// request had completed when it died. No response is ever written — the
/// connection thread unwinds and the peer sees the socket close.
fn handle_debug_panic(shared: &Shared, ctx: &SpanCtx) -> Result<Response, ApiError> {
    if !shared.debug_sleep {
        return Err(ApiError::not_found(
            "debug panic disabled (serve with --debug-sleep)",
        ));
    }
    let mut span = ctx.child("about_to_panic");
    span.attr("drill", "postmortem");
    span.finish();
    panic!("induced panic: POST /debug/panic");
}

/// One failpoint's live state as its wire JSON shape.
fn failpoint_status_json(status: &s2g_failpoints::Status) -> Json {
    Json::obj([
        ("name", Json::from(status.name)),
        ("action", Json::from(status.action)),
        ("delay_ms", Json::from(status.delay_ms as usize)),
        ("probability", Json::from(status.probability)),
        (
            "budget_remaining",
            status
                .budget_remaining
                .map_or(Json::Null, |b| Json::from(b as usize)),
        ),
        ("triggers", Json::from(status.triggers as usize)),
    ])
}

/// Both failpoint drill endpoints answer 404 unless `--failpoints` was
/// given — failure injection must be opted into, never reachable by
/// default.
fn require_failpoints(shared: &Shared) -> Result<(), ApiError> {
    if !shared.failpoints {
        return Err(ApiError::not_found(
            "failpoints disabled (serve with --failpoints)",
        ));
    }
    Ok(())
}

/// `GET /debug/failpoint`: live status of every compiled failpoint.
fn handle_failpoint_list(shared: &Shared) -> Result<Response, ApiError> {
    require_failpoints(shared)?;
    let points: Vec<Json> = s2g_failpoints::snapshot()
        .iter()
        .map(failpoint_status_json)
        .collect();
    let body = Json::obj([("failpoints", Json::Arr(points))]);
    Ok(Response::ok(vec![body.encode()]))
}

/// `POST /debug/failpoint`: arms (or disarms) one failpoint over the
/// wire. Body: `{"name":..., "action":"off|error|delay|panic"}` plus
/// optional `"delay_ms"` (required for `delay`), `"p"` (probability,
/// default 1) and `"budget"` (max triggers, default unlimited). Responds
/// with the failpoint's resulting status.
fn handle_failpoint_set(shared: &Shared, request: &Request) -> Result<Response, ApiError> {
    require_failpoints(shared)?;
    let body = Json::parse(request.body_text()?)
        .map_err(|e| ApiError::bad_request(format!("invalid JSON body: {e}")))?;
    let name = body
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request("body must set \"name\" to a failpoint name"))?;
    let action = body.get("action").and_then(Json::as_str).ok_or_else(|| {
        ApiError::bad_request("body must set \"action\" to off|error|delay|panic")
    })?;
    let action = match action {
        "off" => s2g_failpoints::Action::Off,
        "error" => s2g_failpoints::Action::Error,
        "panic" => s2g_failpoints::Action::Panic,
        "delay" => {
            let ms = body
                .get("delay_ms")
                .and_then(Json::as_usize)
                .ok_or_else(|| {
                    ApiError::bad_request("action \"delay\" needs \"delay_ms\" (an integer)")
                })?;
            s2g_failpoints::Action::Delay(Duration::from_millis(ms as u64))
        }
        other => {
            return Err(ApiError::bad_request(format!(
                "unknown action {other:?} (off|error|delay|panic)"
            )))
        }
    };
    let mut settings = s2g_failpoints::Settings::new(action);
    if let Some(p) = body.get("p") {
        settings.probability = p
            .as_f64()
            .filter(|p| (0.0..=1.0).contains(p))
            .ok_or_else(|| ApiError::bad_request("\"p\" must be a probability in [0, 1]"))?;
    }
    if let Some(budget) = body.get("budget") {
        settings.budget = Some(
            budget
                .as_usize()
                .ok_or_else(|| ApiError::bad_request("\"budget\" must be a non-negative integer"))?
                as u64,
        );
    }
    s2g_failpoints::arm(name, settings)
        .map_err(|e| ApiError::new(422, "unknown_failpoint", e.to_string()))?;
    s2g_obs::warn!(
        "server",
        "failpoint {name} set to {} over the wire",
        action.kind()
    );
    let status = s2g_failpoints::status(name)
        .map_err(|e| ApiError::new(422, "unknown_failpoint", e.to_string()))?;
    Ok(Response::ok(vec![failpoint_status_json(&status).encode()]))
}

/// The admission gate: pool-bound routes call this before queueing work.
/// With the gate on and the pool backlog at the threshold, the request is
/// shed with `429 Retry-After` — refusing cheaply at the door beats
/// queueing work that will only expire.
fn admit(shared: &Shared) -> Result<(), ApiError> {
    let limit = shared.admission_queue;
    if limit > 0 && shared.engine.pending_tasks() >= limit as u64 {
        shared.shed.fetch_add(1, Ordering::Relaxed);
        return Err(ApiError::overloaded(
            format!("scoring backlog at {limit} queued tasks; retry shortly"),
            1,
        ));
    }
    Ok(())
}

/// `GET /metrics/journal`: writer health of the durable telemetry
/// journal — segment/byte footprint on disk, events written, events shed
/// (`dropped`; the writer never blocks the serving path), rotations, and
/// the live segment's sequence number. 404 when journaling is off.
fn handle_metrics_journal(shared: &Shared) -> Result<Response, ApiError> {
    let Some(journal) = &shared.journal else {
        return Err(ApiError::not_found(
            "journal disabled (serve with --data-dir, without --no-journal)",
        ));
    };
    let stats = journal.stats();
    let body = Json::obj([
        ("dir", Json::from(journal.dir().display().to_string())),
        ("segments", Json::from(stats.segments as usize)),
        ("bytes", Json::from(stats.bytes as usize)),
        ("written", Json::from(stats.written as usize)),
        ("dropped", Json::from(stats.dropped as usize)),
        ("rotations", Json::from(stats.rotations as usize)),
        ("current_seq", Json::from(stats.current_seq as usize)),
    ]);
    Ok(Response::ok(vec![body.encode()]))
}

/// One finished trace as its `/debug/trace/{id}` JSON rendering: the span
/// tree flattened to records with explicit `parent` ids.
fn finished_trace_json(trace: &FinishedTrace) -> Json {
    let spans: Vec<Json> = trace
        .spans
        .iter()
        .map(|span| {
            let attrs: Vec<(String, Json)> = span
                .attrs
                .iter()
                .map(|(k, v)| (k.to_string(), Json::from(v.clone())))
                .collect();
            Json::obj([
                ("id", Json::from(span.id as usize)),
                (
                    "parent",
                    span.parent.map_or(Json::Null, |p| Json::from(p as usize)),
                ),
                ("name", Json::from(span.name)),
                ("start_ns", Json::from(span.start_ns as usize)),
                ("duration_ns", Json::from(span.duration_ns as usize)),
                ("attrs", Json::Obj(attrs)),
            ])
        })
        .collect();
    Json::obj([
        ("trace", Json::from(trace.id.to_string())),
        ("route", Json::from(trace.route)),
        ("status", Json::from(trace.status as usize)),
        ("total_ns", Json::from(trace.total_ns as usize)),
        ("spans", Json::Arr(spans)),
    ])
}

fn handle_debug_trace(shared: &Shared, id: &str) -> Result<Response, ApiError> {
    let id = TraceId::parse(id)
        .ok_or_else(|| ApiError::bad_request("trace id must be 16 lowercase hex digits"))?;
    let trace = shared.obs.traces.lookup(id).ok_or_else(|| {
        ApiError::not_found(format!(
            "no retained trace {id} (the ring keeps the last {} traces, plus slow ones)",
            shared.obs.traces.capacity()
        ))
    })?;
    Ok(Response::ok(vec![finished_trace_json(&trace).encode()]))
}

fn handle_debug_slow(shared: &Shared) -> Result<Response, ApiError> {
    let threshold = shared.obs.traces.slow_threshold_ns();
    let traces: Vec<Json> = shared
        .obs
        .traces
        .slow()
        .iter()
        .map(|t| {
            Json::obj([
                ("trace", Json::from(t.id.to_string())),
                ("route", Json::from(t.route)),
                ("status", Json::from(t.status as usize)),
                ("total_ns", Json::from(t.total_ns as usize)),
                ("spans", Json::from(t.spans.len())),
            ])
        })
        .collect();
    let body = Json::obj([
        (
            "slow_threshold_ms",
            if threshold == u64::MAX {
                Json::Null
            } else {
                Json::from((threshold / 1_000_000) as usize)
            },
        ),
        ("traces", Json::Arr(traces)),
    ]);
    Ok(Response::ok(vec![body.encode()]))
}

fn handle_healthz(shared: &Shared) -> Result<Response, ApiError> {
    // The original liveness fields keep their names and meanings; the
    // status payload grew around them (uptime, persistence, residency).
    let storage = shared.engine.storage();
    let body = Json::obj([
        ("status", Json::from("ok")),
        ("models", Json::from(shared.engine.registry().len())),
        ("sessions", Json::from(shared.sessions.len())),
        ("workers", Json::from(shared.engine.workers())),
        (
            "uptime_secs",
            Json::from(shared.started.elapsed().as_secs() as usize),
        ),
        ("persistent", Json::from(storage.is_some())),
        (
            // `read_write` in health, `degraded` while the store's disk is
            // refusing writes (scoring still works), `none` memory-only.
            "store_mode",
            Json::from(storage.map_or("none", |s| s.mode().as_str())),
        ),
        (
            "stored_models",
            Json::from(storage.map_or(0, |s| s.stored())),
        ),
        (
            "resident_bytes",
            Json::from(storage.map_or(0, |s| s.resident_bytes()) as usize),
        ),
        (
            "watch",
            Json::from(match &shared.watch {
                None => "disabled",
                Some(watch) => watch.health_state(),
            }),
        ),
    ]);
    Ok(Response::ok(vec![body.encode()]))
}

fn handle_list_models(shared: &Shared) -> Result<Response, ApiError> {
    let models: Vec<Json> = shared
        .engine
        .list_models()
        .iter()
        .map(model_info_json)
        .collect();
    let body = Json::obj([("models", Json::Arr(models))]);
    Ok(Response::ok(vec![body.encode()]))
}

fn handle_fit(
    shared: &Shared,
    name: &str,
    request: &Request,
    ctx: &SpanCtx,
) -> Result<Response, ApiError> {
    admit(shared)?;
    validate_name(name)?;
    let config = config_from_query(request)?;
    // The posted CSV goes through the *same* parser as the file reader, so a
    // remote fit sees bit-identical values to a local fit on the same file.
    let series = ts_io::parse_series(request.body_text()?)?;
    if series.is_empty() {
        return Err(ApiError::bad_request("request body contains no values"));
    }
    // The info describes the model *this* request fitted (no registry
    // re-lookup a concurrent re-fit of the same name could race), and its
    // checksum was computed once at registration.
    let (_model, info) = shared
        .engine
        .fit_model_traced(name, &series, &config, Some(ctx))?;
    shared.metrics.record_fit();
    let mut body = model_info_json(&info);
    if let Json::Obj(pairs) = &mut body {
        pairs.push((
            "checksum".to_string(),
            Json::from(checksum_string(info.checksum)),
        ));
    }
    Ok(Response::ok(vec![body.encode()]))
}

fn handle_model_info(shared: &Shared, name: &str) -> Result<Response, ApiError> {
    let info = shared
        .engine
        .model_info(name)
        .ok_or_else(|| ApiError::new(404, "unknown_model", format!("no model named {name:?}")))?;
    let mut body = model_info_json(&info);
    if let Json::Obj(pairs) = &mut body {
        pairs.push((
            "checksum".to_string(),
            Json::from(checksum_string(info.checksum)),
        ));
        // Adapted snapshots expose their provenance; pristine fits omit
        // the key entirely.
        if let Some(lineage) = shared.engine.model_lineage(name) {
            pairs.push((
                "lineage".to_string(),
                Json::obj([
                    (
                        "parent_checksum",
                        Json::from(checksum_string(lineage.parent_checksum)),
                    ),
                    ("updates", Json::from(lineage.update_count as usize)),
                    ("lambda", Json::from(lineage.decay_lambda)),
                ]),
            ));
        }
    }
    Ok(Response::ok(vec![body.encode()]))
}

fn handle_delete_model(shared: &Shared, name: &str) -> Result<Response, ApiError> {
    if !shared.engine.remove_model(name)? {
        return Err(ApiError::new(
            404,
            "unknown_model",
            format!("no model named {name:?}"),
        ));
    }
    let body = Json::obj([("deleted", Json::from(name))]);
    Ok(Response::ok(vec![body.encode()]))
}

/// Parses one comma-separated series line; `Err` carries the first
/// unparseable token.
fn parse_series_line(line: &str) -> Result<Vec<f64>, String> {
    let mut values = Vec::new();
    for token in line.split(',') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        match token.parse::<f64>() {
            Ok(value) => values.push(value),
            Err(_) => return Err(token.to_string()),
        }
    }
    Ok(values)
}

fn handle_score(
    shared: &Shared,
    name: &str,
    request: &Request,
    ctx: &SpanCtx,
) -> Result<Response, ApiError> {
    admit(shared)?;
    let query_length = required_query_usize(request, "query_length")?;
    let text = request.body_text()?;
    let mut series = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_series_line(line) {
            Ok(values) => series.push(TimeSeries::from(values)),
            // Mirror `parse_series`: an unparseable first line is treated
            // as a header row and skipped, so the same CSV file is
            // accepted by fit and score alike.
            Err(_) if lineno == 0 => continue,
            Err(token) => {
                return Err(ApiError::new(
                    400,
                    "invalid_csv",
                    format!("line {}: unparseable value {token:?}", lineno + 1),
                ));
            }
        }
    }
    if series.is_empty() {
        return Err(ApiError::bad_request("request body contains no series"));
    }

    // One line per input series, submission-ordered by the worker pool.
    let n_series = series.len() as u64;
    let results = shared
        .engine
        .score_many_traced(name, series, query_length, Some(ctx))?;
    shared.metrics.record_scores(n_series);
    let lines = results
        .into_iter()
        .enumerate()
        .map(|(index, result)| {
            match result {
                Ok(scores) => {
                    Json::obj([("index", Json::from(index)), ("scores", Json::arr(scores))])
                }
                Err(e) => {
                    let api = ApiError::from(e);
                    Json::obj([
                        ("index", Json::from(index)),
                        ("error", Json::from(api.code)),
                        ("message", Json::from(api.message)),
                    ])
                }
            }
            .encode()
        })
        .collect();
    Ok(Response::ok(lines))
}

/// Parses the optional `"adapt"` member of a `POST /sessions` body:
/// absent or `false` → frozen session; `true` → adaptation with defaults;
/// an object → defaults overridden per key.
fn adapt_from_session_body(body: &Json) -> Result<Option<AdaptConfig>, ApiError> {
    let Some(adapt) = body.get("adapt") else {
        return Ok(None);
    };
    let mut config = AdaptConfig::default();
    match adapt {
        Json::Bool(false) => return Ok(None),
        Json::Bool(true) => {}
        Json::Obj(_) => {
            let f64_field = |key: &str| -> Result<Option<f64>, ApiError> {
                match adapt.get(key) {
                    None => Ok(None),
                    Some(v) => v.as_f64().map(Some).ok_or_else(|| {
                        ApiError::bad_request(format!("adapt.{key} expects a number"))
                    }),
                }
            };
            let usize_field = |key: &str| -> Result<Option<usize>, ApiError> {
                match adapt.get(key) {
                    None => Ok(None),
                    Some(v) => v.as_usize().map(Some).ok_or_else(|| {
                        ApiError::bad_request(format!("adapt.{key} expects an integer"))
                    }),
                }
            };
            if let Some(lambda) = f64_field("lambda")? {
                config.lambda = lambda;
            }
            if let Some(quantile) = f64_field("normal_quantile")? {
                config.normal_quantile = quantile;
            }
            if let Some(window) = usize_field("drift_window")? {
                config.drift_window = window;
            }
            if let Some(threshold) = f64_field("drift_threshold")? {
                config.drift_threshold = threshold;
            }
            if let Some(interval) = usize_field("publish_interval")? {
                config.publish_interval = interval as u64;
            }
            if let Some(buffer) = usize_field("refit_buffer")? {
                config.refit_buffer = buffer;
            }
            if let Some(cooldown) = usize_field("refit_cooldown")? {
                config.refit_cooldown = cooldown as u64;
            }
        }
        _ => {
            return Err(ApiError::bad_request(
                "\"adapt\" must be a boolean or an object",
            ))
        }
    }
    Ok(Some(config))
}

fn handle_open_session(shared: &Shared, request: &Request) -> Result<Response, ApiError> {
    let body = Json::parse(request.body_text()?)
        .map_err(|e| ApiError::bad_request(format!("invalid JSON body: {e}")))?;
    let model = body
        .get("model")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request("body must set \"model\" to a string"))?;
    let query_length = body
        .get("query_length")
        .and_then(Json::as_usize)
        .ok_or_else(|| ApiError::bad_request("body must set \"query_length\" to an integer"))?;
    let adapt = adapt_from_session_body(&body)?;
    let adaptive = adapt.is_some();
    let id = shared
        .sessions
        .create(&shared.engine, model, query_length, adapt)?;
    shared.metrics.record_session_opened();
    let body = Json::obj([
        ("session", Json::from(id)),
        ("model", Json::from(model)),
        ("query_length", Json::from(query_length)),
        ("adaptive", Json::from(adaptive)),
    ]);
    Ok(Response::ok(vec![body.encode()]))
}

fn handle_push_session(
    shared: &Shared,
    id: &str,
    request: &Request,
    ctx: &SpanCtx,
) -> Result<Response, ApiError> {
    admit(shared)?;
    shared.sessions.touch(&shared.engine, id)?;
    let series = ts_io::parse_series(request.body_text()?)?;
    let (emitted, status) =
        shared
            .engine
            .push_stream_detailed_traced(id, series.values(), Some(ctx))?;
    let pairs: Vec<Json> = emitted
        .iter()
        .map(|&(start, normality)| Json::Arr(vec![Json::from(start), Json::from(normality)]))
        .collect();
    let mut body = Json::obj([
        ("session", Json::from(id)),
        ("pushed", Json::from(series.len())),
        ("emitted", Json::Arr(pairs)),
    ]);
    if let Some(status) = status {
        let (update_delta, refit_delta) =
            shared
                .sessions
                .record_adapt_progress(id, status.updates, status.refits);
        shared.metrics.record_adaptation(
            update_delta,
            refit_delta,
            status.published_checksum.is_some(),
        );
        let mut adapt = vec![
            ("updates".to_string(), Json::from(status.updates as usize)),
            ("refits".to_string(), Json::from(status.refits as usize)),
            ("action".to_string(), Json::from(status.action.name())),
            (
                "drift".to_string(),
                Json::obj([
                    ("shift", Json::from(status.drift.shift)),
                    ("drifting", Json::from(status.drift.drifting)),
                    ("live_mean", Json::from(status.drift.live_mean)),
                    ("baseline_mean", Json::from(status.drift.baseline_mean)),
                    ("window", Json::from(status.drift.window_len)),
                ]),
            ),
        ];
        if let Some(checksum) = status.published_checksum {
            adapt.push((
                "published_checksum".to_string(),
                Json::from(checksum_string(checksum)),
            ));
        }
        if let Json::Obj(pairs) = &mut body {
            pairs.push(("adapt".to_string(), Json::Obj(adapt)));
        }
    }
    Ok(Response::ok(vec![body.encode()]))
}

fn handle_close_session(shared: &Shared, id: &str) -> Result<Response, ApiError> {
    shared.sessions.forget(id);
    let consumed = shared.engine.close_stream(id)?;
    let body = Json::obj([
        ("session", Json::from(id)),
        ("consumed", Json::from(consumed)),
    ]);
    Ok(Response::ok(vec![body.encode()]))
}

fn handle_shutdown(shared: &Shared) -> Result<Response, ApiError> {
    shared.trigger_shutdown();
    let body = Json::obj([("status", Json::from("shutting-down"))]);
    Ok(Response::ok(vec![body.encode()]))
}
