//! The full `s2g` command-line interface: serving and remote-client
//! subcommands from this crate, layered over the local subcommands
//! (`fit`, `score`, `stream`, `bench-throughput`) from
//! [`s2g_engine::cli`].
//!
//! * `s2g serve` — run the detection server on a TCP address (with
//!   `--data-dir` for restart-durable model persistence),
//! * `s2g client <action>` — drive a running server (fit, score, stream,
//!   models, info, delete, health, shutdown),
//! * `s2g models` — shorthand for `s2g client models`,
//! * `s2g store <action>` — inspect and maintain a model store directory
//!   offline (ls, verify, gc, migrate),
//! * anything else — delegated to the engine CLI, unchanged.
//!
//! Argument parsing is hand-rolled (the workspace is offline; no `clap`)
//! and shares [`ParsedArgs`] with the engine CLI so flags behave
//! identically everywhere.

use std::time::Duration;

use s2g_engine::cli::{CliError, ParsedArgs};
use s2g_engine::EngineConfig;
use s2g_store::{ModelStore, StoreConfig, StoredModelMeta};
use s2g_timeseries::{io as ts_io, window};

use crate::client::{Client, ClientError};
use crate::json::Json;
use crate::server::{Server, ServerConfig};

/// Usage text printed by `s2g help` and on argument errors. Extends the
/// engine CLI's usage with the serving subcommands.
pub const USAGE: &str = "\
s2g — Series2Graph detection engine CLI

USAGE — local (in-process):
    s2g fit    --input <series.csv> --output <model.s2g> --pattern-length <n>
               [--lambda <n>] [--rate <n>] [--kde-grid <n>] [--sigma-ratio <x>]
               [--seed <n>] [--no-smooth]
    s2g score  --model <model.s2g> --query-length <n> [--top-k <k>]
               [--scores-out <csv>] [--workers <n>] <input.csv> [<input.csv>...]
    s2g stream --model <model.s2g> --query-length <n> [--chunk <n>]
               [--top-k <n>] [--adapt] [--adapt-lambda <x>]
               [--normal-quantile <x>] [--drift-window <n>]
               [--drift-threshold <x>] [--refit-buffer <n>]
               [--refit-cooldown <n>] [--adapted-out <model.s2g>] <input.csv>
    s2g bench-throughput [--workers <n>] [--series <n>] [--length <n>]
                         [--pattern-length <n>] [--query-length <n>]
                         [--batches <n>] [--journal-dir <dir>]
                         [--deadline-ms <n>] [--json]

USAGE — serving (over TCP, protocol in docs/PROTOCOL.md):
    s2g serve  [--addr <host:port>] [--workers <n>] [--registry-capacity <n>]
               [--max-clients <n>] [--max-body-bytes <n>]
               [--session-idle-secs <n>] [--data-dir <dir>]
               [--store-budget-mb <n>] [--log-level <error|warn|info|debug>]
               [--log-json] [--slow-request-ms <n>]
               [--sample-interval-ms <n>] [--history-retention <n>]
               [--watch-warmup <n>] [--trace-ring <n>] [--slow-ring <n>]
               [--debug-sleep] [--no-journal] [--journal-segment-kb <n>]
               [--journal-segments <n>] [--failpoints <spec|on>]
               [--admission-queue <n>]
               (S2G_FAILPOINTS env = --failpoints; spec grammar in
                docs/ROBUSTNESS.md, e.g. store.write.enospc=error;budget=3)
    s2g top    [--addr <host:port>] [--window <secs>] [--refresh-ms <n>]
               [--once]   (NO_COLOR or a pipe disables ANSI redraws)
    s2g client fit      --addr <host:port> --name <model> --input <series.csv>
                        --pattern-length <n> [--lambda <n>] [--rate <n>]
                        [--kde-grid <n>] [--sigma-ratio <x>] [--seed <n>]
                        [--no-smooth]
    s2g client score    --addr <host:port> --name <model> --query-length <n>
                        [--top-k <k>] <input.csv> [<input.csv>...]
    s2g client stream   --addr <host:port> --name <model> --query-length <n>
                        [--chunk <n>] [--adapt] [--adapt-lambda <x>]
                        [--normal-quantile <x>] [--drift-window <n>]
                        [--drift-threshold <x>] [--refit-buffer <n>]
                        [--refit-cooldown <n>] [--publish-interval <n>]
                        <input.csv>
    s2g client info     --addr <host:port> --name <model>
    s2g client delete   --addr <host:port> --name <model>
    s2g client models   --addr <host:port> [--json]
    s2g client health   --addr <host:port>
    s2g client metrics  --addr <host:port> [--json]
    s2g client trace    --addr <host:port> <trace-id>
    s2g client shutdown --addr <host:port>
    s2g models          --addr <host:port> [--json]   (same as client models)
    s2g help

USAGE — model store maintenance (offline, docs/STORAGE.md):
    s2g store ls       --data-dir <dir> [--json]
    s2g store verify   --data-dir <dir>
    s2g store gc       --data-dir <dir>
    s2g store migrate  --data-dir <dir>

USAGE — telemetry journal forensics (offline, docs/OBSERVABILITY.md):
    s2g obs ls      (--data-dir <dir> | --journal-dir <dir>) [--json]
    s2g obs report  (--data-dir <dir> | --journal-dir <dir>) [--window <secs>]
    s2g obs grep    (--data-dir <dir> | --journal-dir <dir>) [--route <substr>]
                    [--trace <hex-id>] [--level <error|warn|info|debug>]
                    [--kind <sample|trace|watch|log|panic>]
    s2g obs export  (--data-dir <dir> | --journal-dir <dir>) [--json]

Series files are single-column CSVs (one value per line; `#` comments and a
header row are tolerated). Model files use the versioned `S2GMDL` binary
format. A model fitted over the wire scores bit-identically to the same fit
done in-process. With `serve --data-dir`, fitted models persist across
restarts: fit once, restart freely, keep scoring.";

/// Entry point used by the `s2g` binary: runs and maps errors to exit codes
/// (0 success, 1 runtime failure, 2 usage error).
pub fn run(args: &[String]) -> i32 {
    match dispatch(args) {
        Ok(()) => 0,
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            1
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            2
        }
    }
}

/// Runs one CLI invocation, returning a typed error instead of exiting.
/// Serving subcommands are handled here; everything else falls through to
/// [`s2g_engine::cli::dispatch`].
///
/// # Errors
/// [`CliError::Usage`] for bad arguments, [`CliError::Runtime`] for
/// failures of the command itself.
pub fn dispatch(args: &[String]) -> Result<(), CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::Usage("missing subcommand".to_string()));
    };
    match command.as_str() {
        "serve" => cmd_serve(rest),
        "top" => crate::top::cmd_top(rest),
        "client" => cmd_client(rest),
        "models" => client_models(&ParsedArgs::parse(rest, &["--addr"], &["--json"])?),
        "store" => cmd_store(rest),
        "obs" => crate::obscli::cmd_obs(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        _ => s2g_engine::cli::dispatch(args),
    }
}

fn runtime(e: impl std::fmt::Display) -> CliError {
    CliError::Runtime(e.to_string())
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(
        args,
        &[
            "--addr",
            "--workers",
            "--registry-capacity",
            "--max-clients",
            "--max-body-bytes",
            "--session-idle-secs",
            "--data-dir",
            "--store-budget-mb",
            "--log-level",
            "--slow-request-ms",
            "--sample-interval-ms",
            "--history-retention",
            "--watch-warmup",
            "--trace-ring",
            "--slow-ring",
            "--journal-segment-kb",
            "--journal-segments",
            "--failpoints",
            "--admission-queue",
        ],
        &["--log-json", "--debug-sleep", "--no-journal"],
    )?;
    let addr = args.get("--addr").unwrap_or("127.0.0.1:7878").to_string();
    let mut engine = EngineConfig::default();
    if let Some(workers) = opt_usize(&args, "--workers")? {
        engine = engine.with_workers(workers);
    }
    if let Some(capacity) = opt_usize(&args, "--registry-capacity")? {
        engine = engine.with_registry_capacity(capacity);
    }
    let mut config = ServerConfig::default().with_addr(addr).with_engine(engine);
    if let Some(max_clients) = opt_usize(&args, "--max-clients")? {
        config = config.with_max_clients(max_clients);
    }
    if let Some(max_body) = opt_usize(&args, "--max-body-bytes")? {
        config = config.with_max_body_bytes(max_body);
    }
    if let Some(idle) = opt_usize(&args, "--session-idle-secs")? {
        let idle = (idle > 0).then(|| Duration::from_secs(idle as u64));
        config = config.with_session_idle(idle);
    }
    if let Some(data_dir) = args.get("--data-dir") {
        config = config.with_data_dir(data_dir);
    }
    if let Some(budget_mb) = opt_usize(&args, "--store-budget-mb")? {
        config = config.with_store_budget_bytes(budget_mb as u64 * 1024 * 1024);
    }
    if let Some(level) = args.get("--log-level") {
        let level = s2g_obs::Level::parse(level).ok_or_else(|| {
            CliError::Usage(format!(
                "--log-level expects error|warn|info|debug, got {level:?}"
            ))
        })?;
        config = config.with_log_level(level);
    }
    if args.has("--log-json") {
        config = config.with_log_json(true);
    }
    if let Some(ms) = opt_usize(&args, "--slow-request-ms")? {
        config = config.with_slow_request_ms(Some(ms as u64));
    }
    if let Some(ms) = opt_usize(&args, "--sample-interval-ms")? {
        config = config.with_sample_interval_ms(ms as u64);
    }
    if let Some(retention) = opt_usize(&args, "--history-retention")? {
        config = config.with_history_retention(retention);
    }
    if let Some(warmup) = opt_usize(&args, "--watch-warmup")? {
        config = config.with_watch_warmup(warmup);
    }
    if let Some(ring) = opt_usize(&args, "--trace-ring")? {
        config = config.with_trace_ring(ring);
    }
    if let Some(ring) = opt_usize(&args, "--slow-ring")? {
        config = config.with_slow_ring(ring);
    }
    if args.has("--debug-sleep") {
        config = config.with_debug_sleep(true);
    }
    if args.has("--no-journal") {
        config = config.with_journal(false);
    }
    if let Some(kb) = opt_usize(&args, "--journal-segment-kb")? {
        config = config.with_journal_segment_kb(kb as u64);
    }
    if let Some(segments) = opt_usize(&args, "--journal-segments")? {
        config = config.with_journal_segments(segments);
    }
    // `--failpoints` wins over the env var; either enables the
    // `/debug/failpoint` drill endpoints and applies its spec at startup.
    let failpoints = args
        .get("--failpoints")
        .map(str::to_string)
        .or_else(|| std::env::var("S2G_FAILPOINTS").ok());
    if let Some(spec) = failpoints {
        config = config.with_failpoints(spec);
    }
    if let Some(depth) = opt_usize(&args, "--admission-queue")? {
        config = config.with_admission_queue(depth);
    }

    let server = Server::bind(config).map_err(runtime)?;
    // Printed (and flushed) before serving so wrappers can wait for
    // readiness by watching stdout.
    println!("s2g-server listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run().map_err(runtime)
}

fn opt_usize(args: &ParsedArgs, flag: &str) -> Result<Option<usize>, CliError> {
    match args.get(flag) {
        None => Ok(None),
        Some(_) => args.usize_flag(flag, None).map(Some),
    }
}

// ---------------------------------------------------------------------------
// client
// ---------------------------------------------------------------------------

fn cmd_client(args: &[String]) -> Result<(), CliError> {
    let Some((action, rest)) = args.split_first() else {
        return Err(CliError::Usage("client needs an action".to_string()));
    };
    match action.as_str() {
        "fit" => client_fit(rest),
        "score" => client_score(rest),
        "stream" => client_stream(rest),
        "info" => client_info(rest),
        "delete" => client_delete(rest),
        "models" => client_models(&ParsedArgs::parse(rest, &["--addr"], &["--json"])?),
        "health" => client_health(rest),
        "metrics" => client_metrics(rest),
        "trace" => client_trace(rest),
        "shutdown" => client_shutdown(rest),
        other => Err(CliError::Usage(format!("unknown client action {other:?}"))),
    }
}

fn connect(args: &ParsedArgs) -> Result<Client, CliError> {
    Ok(Client::new(args.required("--addr")?))
}

fn print_model_info(info: &Json) {
    for key in [
        "name",
        "pattern_length",
        "node_count",
        "edge_count",
        "train_len",
        "fitted_at",
        "checksum",
        "lineage",
    ] {
        if let Some(value) = info.get(key) {
            let rendered = match value {
                Json::Str(s) => s.clone(),
                other => other.encode(),
            };
            println!("{key:>15}  {rendered}");
        }
    }
}

fn client_fit(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(
        args,
        &[
            "--addr",
            "--name",
            "--input",
            "--pattern-length",
            "--lambda",
            "--rate",
            "--kde-grid",
            "--sigma-ratio",
            "--seed",
        ],
        &["--no-smooth"],
    )?;
    let client = connect(&args)?;
    let name = args.required("--name")?;
    let input = args.required("--input")?;
    let pattern_length = args.usize_flag("--pattern-length", None)?;

    let mut query = format!("pattern_length={pattern_length}");
    for (flag, key) in [
        ("--lambda", "lambda"),
        ("--rate", "rate"),
        ("--kde-grid", "kde_grid"),
        ("--seed", "seed"),
    ] {
        if let Some(value) = opt_usize(&args, flag)? {
            query.push_str(&format!("&{key}={value}"));
        }
    }
    if let Some(ratio) = args.f64_flag("--sigma-ratio")? {
        query.push_str(&format!("&sigma_ratio={ratio}"));
    }
    if args.has("--no-smooth") {
        query.push_str("&smooth=false");
    }

    // The file bytes go over the wire verbatim: the server parses them with
    // the same CSV parser `s2g fit` uses locally, so the remote fit is
    // bit-identical to a local one.
    let csv = std::fs::read_to_string(input).map_err(runtime)?;
    let info = client.fit_model(name, &query, &csv).map_err(runtime)?;
    println!("fitted {name} on {input}");
    print_model_info(&info);
    Ok(())
}

fn client_score(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(
        args,
        &["--addr", "--name", "--query-length", "--top-k"],
        &[],
    )?;
    let client = connect(&args)?;
    let name = args.required("--name")?;
    let query_length = args.usize_flag("--query-length", None)?;
    let top_k = args.usize_flag("--top-k", Some(3))?;
    if args.positional().is_empty() {
        return Err(CliError::Usage(
            "client score needs at least one input series".to_string(),
        ));
    }

    let mut series = Vec::new();
    for path in args.positional() {
        series.push(ts_io::read_series(path).map_err(runtime)?.into_vec());
    }
    let results = client.score(name, query_length, &series).map_err(runtime)?;
    for (path, result) in args.positional().iter().zip(results) {
        match result {
            Ok(profile) => {
                let picks = window::top_k_non_overlapping(&profile, top_k, query_length);
                for (rank, &start) in picks.iter().enumerate() {
                    println!("{path}\t{}\t{start}\t{}", rank + 1, profile[start]);
                }
            }
            Err((code, message)) => {
                eprintln!("{path}: {code}: {message}");
            }
        }
    }
    Ok(())
}

fn client_stream(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(
        args,
        &[
            "--addr",
            "--name",
            "--query-length",
            "--chunk",
            "--adapt-lambda",
            "--normal-quantile",
            "--drift-window",
            "--drift-threshold",
            "--refit-buffer",
            "--refit-cooldown",
            "--publish-interval",
        ],
        &["--adapt"],
    )?;
    let client = connect(&args)?;
    let name = args.required("--name")?;
    let query_length = args.usize_flag("--query-length", None)?;
    let chunk = args.usize_flag("--chunk", Some(512))?.max(1);
    let [input] = args.positional() else {
        return Err(CliError::Usage(
            "client stream needs exactly one input series".to_string(),
        ));
    };

    // The adapt options reuse the engine CLI's flag semantics, so local
    // and remote adaptive streaming are spelled identically.
    let adapt = if args.has("--adapt") {
        let config = s2g_engine::cli::adapt_config_from_args(&args)?;
        let mut pairs = vec![
            ("lambda".to_string(), Json::from(config.lambda)),
            (
                "normal_quantile".to_string(),
                Json::from(config.normal_quantile),
            ),
            ("drift_window".to_string(), Json::from(config.drift_window)),
            (
                "drift_threshold".to_string(),
                Json::from(config.drift_threshold),
            ),
            ("refit_buffer".to_string(), Json::from(config.refit_buffer)),
            (
                "refit_cooldown".to_string(),
                Json::from(config.refit_cooldown as usize),
            ),
        ];
        if let Some(interval) = opt_usize(&args, "--publish-interval")? {
            pairs.push(("publish_interval".to_string(), Json::from(interval)));
        }
        Some(Json::Obj(pairs))
    } else {
        None
    };

    let series = ts_io::read_series(input).map_err(runtime)?;
    let session = client
        .open_session_with(name, query_length, adapt)
        .map_err(runtime)?;
    let mut emitted = Vec::new();
    let mut last_adapt: Option<Json> = None;
    for block in series.values().chunks(chunk) {
        let (pairs, adapt) = client
            .push_session_detailed(&session, block)
            .map_err(runtime)?;
        emitted.extend(pairs);
        if adapt.is_some() {
            last_adapt = adapt;
        }
    }
    let consumed = client.close_session(&session).map_err(runtime)?;
    println!(
        "streamed {consumed} points through session {session}: {} windows emitted",
        emitted.len()
    );
    if let Some(&(start, score)) = emitted.iter().min_by(|a, b| a.1.total_cmp(&b.1)) {
        println!("lowest normality {score} at window start {start}");
    }
    if let Some(adapt) = last_adapt {
        println!("adaptation: {}", adapt.encode());
    }
    Ok(())
}

fn client_metrics(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(args, &["--addr"], &["--json"])?;
    let client = connect(&args)?;
    if args.has("--json") {
        // One machine-readable line: gauges plus latency summaries
        // (p50/p95/p99 per route and per stage) from `GET /metrics/json`.
        println!("{}", client.metrics_json().map_err(runtime)?.encode());
        return Ok(());
    }
    for line in client.metrics().map_err(runtime)? {
        println!("{line}");
    }
    Ok(())
}

fn client_trace(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(args, &["--addr"], &[])?;
    let client = connect(&args)?;
    let [id] = args.positional() else {
        return Err(CliError::Usage(
            "client trace needs exactly one trace id (16 hex digits)".to_string(),
        ));
    };
    let trace = client.trace(id).map_err(runtime)?;
    // A human-readable span tree: indent children under their parent,
    // durations in milliseconds; the raw JSON stays one `encode()` away.
    let route = trace.get("route").and_then(Json::as_str).unwrap_or("?");
    let status = trace.get("status").and_then(Json::as_usize).unwrap_or(0);
    let total_ns = trace.get("total_ns").and_then(Json::as_usize).unwrap_or(0);
    println!(
        "trace {id}  {route} -> {status}  total {:.3} ms",
        total_ns as f64 / 1e6
    );
    let spans = trace
        .get("spans")
        .and_then(Json::as_array)
        .map(<[Json]>::to_vec)
        .unwrap_or_default();
    fn print_children(spans: &[Json], parent: Option<usize>, depth: usize) {
        for span in spans {
            let this_parent = span.get("parent").and_then(Json::as_usize);
            if this_parent != parent {
                continue;
            }
            let id = span.get("id").and_then(Json::as_usize);
            let name = span.get("name").and_then(Json::as_str).unwrap_or("?");
            let duration = span
                .get("duration_ns")
                .and_then(Json::as_usize)
                .unwrap_or(0);
            let attrs = match span.get("attrs") {
                Some(Json::Obj(pairs)) if !pairs.is_empty() => {
                    let rendered: Vec<String> = pairs
                        .iter()
                        .map(|(k, v)| match v {
                            Json::Str(s) => format!("{k}={s}"),
                            other => format!("{k}={}", other.encode()),
                        })
                        .collect();
                    format!("  [{}]", rendered.join(" "))
                }
                _ => String::new(),
            };
            println!(
                "{:indent$}{name}  {:.3} ms{attrs}",
                "",
                duration as f64 / 1e6,
                indent = depth * 2
            );
            if let Some(id) = id {
                print_children(spans, Some(id), depth + 1);
            }
        }
    }
    print_children(&spans, None, 1);
    Ok(())
}

fn client_info(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(args, &["--addr", "--name"], &[])?;
    let client = connect(&args)?;
    let info = client
        .model_info(args.required("--name")?)
        .map_err(runtime)?;
    print_model_info(&info);
    Ok(())
}

fn client_delete(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(args, &["--addr", "--name"], &[])?;
    let client = connect(&args)?;
    let name = args.required("--name")?;
    client.delete_model(name).map_err(runtime)?;
    println!("deleted {name}");
    Ok(())
}

fn client_models(args: &ParsedArgs) -> Result<(), CliError> {
    let client = connect(args)?;
    let models = client.list_models().map_err(runtime)?;
    if args.has("--json") {
        // One machine-readable line, exactly the server's listing shape —
        // scripts consume this instead of scraping the table below.
        println!("{}", Json::obj([("models", Json::Arr(models))]).encode());
        return Ok(());
    }
    if models.is_empty() {
        println!("no models registered");
        return Ok(());
    }
    println!("name\tpattern_length\tnode_count\ttrain_len\tfitted_at");
    for model in models {
        let field = |key: &str| {
            model
                .get(key)
                .map(|v| match v {
                    Json::Str(s) => s.clone(),
                    other => other.encode(),
                })
                .unwrap_or_default()
        };
        println!(
            "{}\t{}\t{}\t{}\t{}",
            field("name"),
            field("pattern_length"),
            field("node_count"),
            field("train_len"),
            field("fitted_at"),
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// store maintenance
// ---------------------------------------------------------------------------

/// Renders one stored model's metadata as the `store ls --json` object.
/// Checksums travel as fixed-width hex strings (u64 exceeds exact JSON
/// numbers), matching the wire protocol's convention.
fn stored_meta_json(meta: &StoredModelMeta) -> Json {
    Json::obj([
        ("name", Json::from(meta.name.clone())),
        ("version", Json::from(meta.version)),
        ("file_len", Json::from(meta.file_len as usize)),
        ("checksum", Json::from(format!("{:#018x}", meta.checksum))),
        ("pattern_length", Json::from(meta.pattern_length)),
        ("node_count", Json::from(meta.node_count)),
        ("edge_count", Json::from(meta.edge_count)),
        ("train_len", Json::from(meta.train_len)),
        ("points_len", Json::from(meta.points_len)),
        ("points_bytes", Json::from(meta.points_bytes as usize)),
    ])
}

fn cmd_store(args: &[String]) -> Result<(), CliError> {
    let Some((action, rest)) = args.split_first() else {
        return Err(CliError::Usage(
            "store needs an action (ls|verify|gc|migrate)".to_string(),
        ));
    };
    let parsed = ParsedArgs::parse(rest, &["--data-dir"], &["--json"])?;
    let dir = parsed.required("--data-dir")?;
    let store = ModelStore::open(dir, StoreConfig::default()).map_err(runtime)?;
    match action.as_str() {
        "ls" => {
            let metas = store.list();
            if parsed.has("--json") {
                let models: Vec<Json> = metas.iter().map(stored_meta_json).collect();
                println!("{}", Json::obj([("models", Json::Arr(models))]).encode());
                return Ok(());
            }
            if metas.is_empty() {
                println!("store at {dir} holds no models");
                return Ok(());
            }
            println!("name\tversion\tpattern_length\tnode_count\ttrain_len\tfile_bytes\tchecksum");
            for m in &metas {
                println!(
                    "{}\tv{}\t{}\t{}\t{}\t{}\t{:#018x}",
                    m.name,
                    m.version,
                    m.pattern_length,
                    m.node_count,
                    m.train_len,
                    m.file_len,
                    m.checksum,
                );
            }
            Ok(())
        }
        "verify" => {
            let report = store.verify().map_err(runtime)?;
            for name in &report.ok {
                println!("ok\t{name}");
            }
            for (file, error) in &report.failed {
                eprintln!("FAILED\t{file}\t{error}");
            }
            if report.failed.is_empty() {
                println!("verified {} model(s), no corruption", report.ok.len());
                Ok(())
            } else {
                Err(CliError::Runtime(format!(
                    "{} of {} file(s) failed verification",
                    report.failed.len(),
                    report.failed.len() + report.ok.len()
                )))
            }
        }
        "gc" => {
            let report = store.gc().map_err(runtime)?;
            for file in &report.removed_temp_files {
                println!("removed\t{file}");
            }
            for (file, error) in &report.unreadable {
                eprintln!("unreadable (kept)\t{file}\t{error}");
            }
            println!(
                "gc: removed {} temp file(s), {} unreadable file(s) left in place",
                report.removed_temp_files.len(),
                report.unreadable.len()
            );
            Ok(())
        }
        "migrate" => {
            let report = store.migrate().map_err(runtime)?;
            for name in &report.migrated {
                println!("migrated\t{name}");
            }
            println!(
                "migrate: rewrote {} model(s) to format v{}, {} already current",
                report.migrated.len(),
                s2g_engine::codec::FORMAT_VERSION,
                report.already_current
            );
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown store action {other:?}"))),
    }
}

fn client_health(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(args, &["--addr"], &[])?;
    let client = connect(&args)?;
    let health = client.health().map_err(runtime)?;
    println!("{}", health.encode());
    Ok(())
}

fn client_shutdown(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(args, &["--addr"], &[])?;
    let client = connect(&args)?;
    match client.shutdown_server() {
        Ok(()) => {
            println!("server at {} is shutting down", client.addr());
            Ok(())
        }
        // The server may drop the socket while racing its own shutdown;
        // treat that as success — but a refused connection means nothing
        // was listening, which is a real failure.
        Err(ClientError::Io(e)) if e.kind() != std::io::ErrorKind::ConnectionRefused => {
            println!("server at {} closed the connection", client.addr());
            Ok(())
        }
        Err(e) => Err(runtime(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_subcommands_still_reach_engine_cli() {
        assert!(matches!(
            dispatch(&strs(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(dispatch(&strs(&[])), Err(CliError::Usage(_))));
    }

    #[test]
    fn client_requires_action_and_addr() {
        assert!(matches!(
            dispatch(&strs(&["client"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch(&strs(&["client", "bogus"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch(&strs(&["models"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch(&strs(&[
                "client",
                "score",
                "--addr",
                "x",
                "--name",
                "m",
                "--query-length",
                "100"
            ])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn shutdown_against_nothing_is_a_runtime_error() {
        // Port 1 on loopback: connection refused — must NOT be treated as
        // a successful shutdown of a live server.
        assert!(matches!(
            dispatch(&strs(&["client", "shutdown", "--addr", "127.0.0.1:1"])),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn serve_validates_flags() {
        assert!(matches!(
            dispatch(&strs(&["serve", "--workers", "abc"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch(&strs(&["serve", "--bogus-flag", "1"])),
            Err(CliError::Usage(_))
        ));
    }
}
