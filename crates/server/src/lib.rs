//! # s2g-server — TCP/HTTP serving front-end over the detection engine
//!
//! [`s2g_engine`] manages fleets of Series2Graph models in one process;
//! this crate puts them on the network. A [`Server`] owns an
//! [`Engine`] — model registry, sharded worker pool,
//! pinned streaming sessions — and exposes its full surface over a
//! hand-rolled HTTP/1.1 subset (the workspace is offline, so listener,
//! request parser, router, JSON codec and client are all written in-repo
//! on `std::net` alone):
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `PUT /models/{name}` | fit a model from posted CSV values |
//! | `GET /models` / `GET /models/{name}` | registry listing / metadata + checksum |
//! | `DELETE /models/{name}` | unregister |
//! | `POST /models/{name}/score` | batch-score series, submission-ordered |
//! | `POST /sessions`, `POST /sessions/{id}/push`, `DELETE /sessions/{id}` | pinned streaming sessions with idle eviction |
//! | `GET /healthz`, `POST /admin/shutdown` | status (uptime, residency, model counts), remote stop |
//!
//! With [`ServerConfig::data_dir`] set, the engine mounts an `s2g-store`
//! model store: fitted models persist across restarts (save-on-fit,
//! manifest preload, lazy load-through on first score) and `DELETE`
//! removes the stored file too. See `docs/STORAGE.md`.
//!
//! The wire contract — framing, error codes, worked byte-level example —
//! is specified in `docs/PROTOCOL.md`; the crate layering in
//! `docs/ARCHITECTURE.md`.
//!
//! Two properties carry over from the engine untouched:
//!
//! * **Determinism** — posted CSV bodies are decoded by the same parser as
//!   local files, scores travel as shortest-round-trip JSON numbers, and
//!   batch scoring reassembles worker-pool results in submission order, so
//!   a fit/score over the socket is **bit-identical** to the same fit/score
//!   in-process.
//! * **Data stays put** — models are fitted and kept server-side; only
//!   values in and scores out cross the wire.
//!
//! ## Example: in-process server, remote fit and score
//!
//! ```
//! use s2g_server::{Client, Server, ServerConfig};
//!
//! // Bind on an ephemeral port and serve in the background.
//! let server = Server::bind(ServerConfig::default().with_addr("127.0.0.1:0")).unwrap();
//! let addr = server.local_addr();
//! let handle = server.shutdown_handle();
//! let thread = std::thread::spawn(move || server.run().unwrap());
//!
//! // A remote client fits a model from CSV text and scores against it.
//! let client = Client::new(addr.to_string());
//! let csv: String = (0..2000)
//!     .map(|i| format!("{}\n", (std::f64::consts::TAU * i as f64 / 80.0).sin()))
//!     .collect();
//! let info = client.fit_model("turbine", "pattern_length=40", &csv).unwrap();
//! assert_eq!(info.get("train_len").unwrap().as_usize(), Some(2000));
//!
//! let probe: Vec<f64> = (0..500)
//!     .map(|i| (std::f64::consts::TAU * i as f64 / 80.0).sin())
//!     .collect();
//! let results = client.score("turbine", 160, &[probe]).unwrap();
//! assert_eq!(results[0].as_ref().unwrap().len(), 500 - 160 + 1);
//!
//! // SIGTERM-equivalent: flag + connect-to-self wakeup, then join.
//! handle.shutdown();
//! thread.join().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod client;
pub mod error;
mod history;
pub mod http;
pub mod json;
pub mod metrics;
mod obscli;
mod selfwatch;
pub mod server;
pub mod sessions;
mod top;

pub use client::{Client, ClientError, ClientResponse, RetryPolicy};
pub use error::ApiError;
pub use json::Json;
pub use server::{Server, ServerConfig, ShutdownHandle};
pub use sessions::SessionTable;

// Re-exported so server embedders see the engine types they configure.
pub use s2g_engine::{Engine, EngineConfig};
// Re-exported so embedders can mount / inspect the durable model store
// without a direct s2g-store dependency.
pub use s2g_store::{ModelStore, StoreConfig};
