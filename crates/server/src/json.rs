//! Minimal JSON value model, serializer and parser.
//!
//! The workspace is offline, so the wire codec is written in-repo. This is a
//! deliberately small JSON subset sufficient for the `s2g-server` protocol:
//!
//! * values: `null`, booleans, finite `f64` numbers, strings, arrays,
//!   objects;
//! * objects preserve **insertion order** (they are a `Vec` of pairs, not a
//!   map), so serialized output is deterministic;
//! * numbers are emitted with Rust's shortest round-trip `f64` formatting
//!   and parsed with `f64::from_str`, which makes a
//!   serialize → parse round trip **bit-exact** for every finite `f64` —
//!   the property the protocol's bit-for-bit scoring guarantee rests on;
//! * parsing enforces a nesting-depth limit and rejects trailing garbage.
//!
//! Non-finite numbers (`NaN`, `±inf`) have no JSON representation and
//! serialize as `null`, mirroring what mainstream encoders do.
//!
//! # Example
//!
//! ```
//! use s2g_server::json::Json;
//!
//! let value = Json::obj([
//!     ("name", Json::from("turbine")),
//!     ("scores", Json::arr([0.125, 0.25])),
//! ]);
//! let line = value.encode();
//! assert_eq!(line, r#"{"name":"turbine","scores":[0.125,0.25]}"#);
//! let back = Json::parse(&line).unwrap();
//! assert_eq!(back.get("scores").unwrap().as_f64_array().unwrap(), vec![0.125, 0.25]);
//! ```

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A JSON value (see the [module docs](self) for the supported subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite IEEE-754 double.
    Num(f64),
    /// A UTF-8 string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object: key/value pairs in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(f64::from(v))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

/// Error produced by [`Json::parse`]: a byte offset and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs, preserving their order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from anything convertible to [`Json`].
    pub fn arr<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    /// Accepts the full range a JSON number can carry exactly (up to 2⁵³).
    pub fn as_usize(&self) -> Option<usize> {
        const MAX_EXACT: f64 = (1u64 << 53) as f64;
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= MAX_EXACT => Some(*v as usize),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The array payload as `f64`s, if this is an array of numbers.
    pub fn as_f64_array(&self) -> Option<Vec<f64>> {
        self.as_array()?.iter().map(Json::as_f64).collect()
    }

    /// Serializes the value onto one line (no added whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) if v.is_finite() => {
                // Rust's f64 Display is the shortest representation that
                // parses back to the identical bit pattern.
                let _ = write!(out, "{v}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(key, out);
                    out.push(':');
                    value.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text`, rejecting trailing non-whitespace.
    ///
    /// # Errors
    /// [`JsonError`] with the byte offset of the first offending character.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("non-UTF-8 number"))?;
        let value: f64 = text
            .parse()
            .map_err(|_| self.error(format!("invalid number {text:?}")))?;
        if !value.is_finite() {
            return Err(self.error(format!("non-finite number {text:?}")));
        }
        Ok(Json::Num(value))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-UTF-8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogates are rejected (the protocol never
                            // emits them); BMP scalars only.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("invalid \\u scalar"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, however many bytes it spans.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("non-UTF-8 string content"))?;
                    let c = rest.chars().next().ok_or_else(|| self.error("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_bit_exactly() {
        let values = [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            1e-300,
            0.1 + 0.2,
            std::f64::consts::PI,
        ];
        for v in values {
            let encoded = Json::Num(v).encode();
            let parsed = Json::parse(&encoded).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "round-trip of {v}");
        }
    }

    #[test]
    fn objects_preserve_order_and_nest() {
        let value = Json::obj([
            ("b", Json::from(2.0)),
            ("a", Json::arr([Json::Null, Json::Bool(true)])),
            ("s", Json::from("x\"y\\z\n")),
        ]);
        let line = value.encode();
        assert!(line.starts_with(r#"{"b":2,"#));
        let back = Json::parse(&line).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\"}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1e999").is_err(), "non-finite must be rejected");
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"xs":[1,2.5],"name":"m","neg":-1}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("neg").unwrap().as_usize(), None);
        assert_eq!(v.get("xs").unwrap().as_f64_array(), Some(vec![1.0, 2.5]));
        assert_eq!(v.get("name").unwrap().as_str(), Some("m"));
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("n").is_none());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "tab\t newline\n quote\" back\\ unicode\u{1F600} ctrl\u{1}";
        let encoded = Json::from(s).encode();
        assert_eq!(Json::parse(&encoded).unwrap().as_str(), Some(s));
    }
}
