//! `s2g top` — a live terminal dashboard over a running server.
//!
//! Polls `GET /metrics/history`, `GET /metrics/delta` and `GET /watch`
//! on a refresh interval and renders the retained telemetry as
//! sparklines (request rate, windowed mean latency, pool queue depth)
//! plus the self-watch board and a windowed per-route table. Std-only:
//! the "UI" is ANSI clear-screen plus Unicode block characters, so it
//! works in any terminal and `--once` degrades it to a plain printout
//! for scripts and smoke tests.
//!
//! ANSI escapes are emitted only when they will be understood: a
//! non-terminal stdout (pipe, file, CI log) or a set `NO_COLOR`
//! environment variable (<https://no-color.org/>) switches the loop to
//! plain separated redraws with no control codes at all.

use std::io::IsTerminal;
use std::time::Duration;

use s2g_engine::cli::{CliError, ParsedArgs};

use crate::client::{Client, ClientError};
use crate::json::Json;

/// Eight-level bar alphabet for sparklines.
const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as one sparkline character per value, scaled to the
/// series maximum (all-minimum when the series is flat at zero).
fn sparkline(values: &[f64]) -> String {
    let max = values.iter().copied().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || !v.is_finite() {
                BARS[0]
            } else {
                let level = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
                BARS[level]
            }
        })
        .collect()
}

/// Whether ANSI control codes should be emitted: only to a real
/// terminal, and only when the user has not opted out via a non-empty
/// `NO_COLOR` (the <https://no-color.org/> convention). Pure so it can
/// be pinned by tests without a TTY.
fn ansi_enabled(no_color: Option<&str>, stdout_is_tty: bool) -> bool {
    stdout_is_tty && no_color.is_none_or(str::is_empty)
}

/// `s2g top [--addr <host:port>] [--window <secs>] [--refresh-ms <n>]
/// [--once]`.
///
/// # Errors
/// [`CliError::Usage`] for bad flags, [`CliError::Runtime`] when the
/// server cannot be reached.
pub(crate) fn cmd_top(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(args, &["--addr", "--window", "--refresh-ms"], &["--once"])?;
    let addr = args.get("--addr").unwrap_or("127.0.0.1:7878").to_string();
    let window = args.usize_flag("--window", Some(60))? as u64;
    let refresh_ms = args.usize_flag("--refresh-ms", Some(1_000))?.max(100) as u64;
    let once = args.has("--once");
    let no_color = std::env::var("NO_COLOR").ok();
    let ansi = ansi_enabled(no_color.as_deref(), std::io::stdout().is_terminal());
    let client = Client::new(addr.clone());
    loop {
        let frame =
            render_frame(&client, &addr, window).map_err(|e| CliError::Runtime(e.to_string()))?;
        if once {
            println!("{frame}");
            return Ok(());
        }
        if ansi {
            // Clear screen + home, then the frame — a full redraw per tick.
            print!("\x1b[2J\x1b[H{frame}\n(refresh {refresh_ms} ms, ctrl-c to quit)");
        } else {
            // Plain redraw: no control codes for pipes, logs, NO_COLOR.
            println!("{frame}");
            println!("--- (refresh {refresh_ms} ms, ctrl-c to quit)");
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_millis(refresh_ms));
    }
}

/// A 404 means the feature is off server-side (sampling disabled);
/// render that instead of dying. Everything else is a real failure.
fn optional(result: Result<Json, ClientError>) -> Result<Option<Json>, ClientError> {
    match result {
        Ok(json) => Ok(Some(json)),
        Err(ClientError::Api { status: 404, .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

/// One full dashboard frame as a string (no ANSI control codes — the
/// caller decides whether to clear the screen around it).
fn render_frame(client: &Client, addr: &str, window: u64) -> Result<String, ClientError> {
    let health = client.health()?;
    let history = optional(client.metrics_history(window, 1))?;
    let delta = optional(client.metrics_delta(window))?;
    let watch = optional(client.watch())?;

    let field = |json: &Json, key: &str| json.get(key).and_then(Json::as_usize).unwrap_or(0);
    let state = health
        .get("watch")
        .and_then(Json::as_str)
        .unwrap_or("disabled")
        .to_string();
    let mut out = format!(
        "s2g top — {addr}   watch: {state}   uptime {}s   models {}   sessions {}   workers {}\n",
        field(&health, "uptime_secs"),
        field(&health, "models"),
        field(&health, "sessions"),
        field(&health, "workers"),
    );

    match &history {
        None => out.push_str("\nflight recorder: disabled (serve with --sample-interval-ms > 0)\n"),
        Some(history) => render_history(&mut out, history),
    }
    if let Some(watch) = &watch {
        render_watch(&mut out, watch);
    }
    match &delta {
        None => {}
        Some(delta) => render_delta(&mut out, delta, window),
    }
    Ok(out)
}

/// Positions of the schema names matching `predicate`.
fn matching_indices(schema: &Json, kind: &str, predicate: impl Fn(&str) -> bool) -> Vec<usize> {
    schema
        .get(kind)
        .and_then(Json::as_array)
        .map(|names| {
            names
                .iter()
                .enumerate()
                .filter(|(_, n)| n.as_str().is_some_and(&predicate))
                .map(|(i, _)| i)
                .collect()
        })
        .unwrap_or_default()
}

/// The flight-recorder block: sample count plus rate / latency / queue
/// sparklines derived from consecutive cumulative samples.
fn render_history(out: &mut String, history: &Json) {
    let interval_ms = history
        .get("interval_ms")
        .and_then(Json::as_usize)
        .unwrap_or(0);
    let retention = history
        .get("retention")
        .and_then(Json::as_usize)
        .unwrap_or(0);
    let samples = history
        .get("series")
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    out.push_str(&format!(
        "\nflight recorder: {} samples @ {interval_ms} ms (retention {retention})\n",
        samples.len()
    ));
    if samples.len() < 2 {
        out.push_str("  (need two samples for rates — waiting)\n");
        return;
    }
    let schema = history.get("schema").cloned().unwrap_or(Json::Null);
    let request_counters = matching_indices(&schema, "counters", |n| {
        n.starts_with("s2g_requests_total{")
    });
    let external_hists = matching_indices(&schema, "histograms", |n| {
        n.starts_with("s2g_request_duration_ns{")
    });
    let queue_gauge = matching_indices(&schema, "gauges", |n| n == "s2g_pool_queue_depth_total")
        .first()
        .copied();

    // Cumulative totals per sample, then consecutive deltas.
    let totals: Vec<(f64, f64, f64, f64)> = samples
        .iter()
        .map(|sample| {
            let counters = sample
                .get("counters")
                .and_then(Json::as_array)
                .unwrap_or(&[]);
            let hists = sample
                .get("histograms")
                .and_then(Json::as_array)
                .unwrap_or(&[]);
            let requests: f64 = request_counters
                .iter()
                .filter_map(|&i| counters.get(i).and_then(Json::as_f64))
                .sum();
            let (mut count, mut sum_ns) = (0.0, 0.0);
            for &i in &external_hists {
                if let Some(h) = hists.get(i) {
                    count += h.get("count").and_then(Json::as_f64).unwrap_or(0.0);
                    sum_ns += h.get("sum_ns").and_then(Json::as_f64).unwrap_or(0.0);
                }
            }
            let t_ns = sample.get("t_ns").and_then(Json::as_f64).unwrap_or(0.0);
            (t_ns, requests, count, sum_ns)
        })
        .collect();
    let mut rates = Vec::new();
    let mut means_ms = Vec::new();
    for pair in totals.windows(2) {
        let (t0, r0, c0, s0) = pair[0];
        let (t1, r1, c1, s1) = pair[1];
        let dt = ((t1 - t0) / 1e9).max(1e-9);
        rates.push((r1 - r0).max(0.0) / dt);
        let dc = (c1 - c0).max(0.0);
        means_ms.push(if dc > 0.0 {
            (s1 - s0).max(0.0) / dc / 1e6
        } else {
            0.0
        });
    }
    let queue: Vec<f64> = match queue_gauge {
        None => Vec::new(),
        Some(i) => samples
            .iter()
            .filter_map(|s| s.get("gauges").and_then(Json::as_array)?.get(i)?.as_f64())
            .collect(),
    };
    let last = |v: &[f64]| v.last().copied().unwrap_or(0.0);
    out.push_str(&format!(
        "  req/s    {}  last {:.1}/s\n",
        sparkline(&rates),
        last(&rates)
    ));
    out.push_str(&format!(
        "  mean ms  {}  last {:.3} ms\n",
        sparkline(&means_ms),
        last(&means_ms)
    ));
    if !queue.is_empty() {
        out.push_str(&format!(
            "  queue    {}  last {:.0}\n",
            sparkline(&queue),
            last(&queue)
        ));
    }
}

/// The self-watch block: overall state, warm-up progress, one line per
/// signal.
fn render_watch(out: &mut String, watch: &Json) {
    let state = watch.get("state").and_then(Json::as_str).unwrap_or("?");
    let warmup = watch.get("warmup").cloned().unwrap_or(Json::Null);
    let target = warmup.get("target").and_then(Json::as_usize).unwrap_or(0);
    let collected = warmup
        .get("collected")
        .and_then(Json::as_usize)
        .unwrap_or(0);
    out.push_str(&format!(
        "\nself-watch: {state} (warmup {collected}/{target})\n"
    ));
    let signals = watch.get("signals").and_then(Json::as_array).unwrap_or(&[]);
    if signals.is_empty() {
        return;
    }
    out.push_str(&format!(
        "  {:<22} {:<10} {:<9} {:>12} {:>12} {:>12}\n",
        "signal", "state", "scorer", "value", "score", "threshold"
    ));
    for signal in signals {
        let text = |key: &str| {
            signal
                .get(key)
                .and_then(Json::as_str)
                .unwrap_or("-")
                .to_string()
        };
        let num = |key: &str| match signal.get(key).and_then(Json::as_f64) {
            Some(v) => format!("{v:.4}"),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "  {:<22} {:<10} {:<9} {:>12} {:>12} {:>12}\n",
            text("name"),
            text("state"),
            text("scorer"),
            num("value"),
            num("score"),
            num("threshold"),
        ));
    }
}

/// The windowed-delta block: per-route rates and windowed percentiles
/// from `GET /metrics/delta`, busiest routes first.
fn render_delta(out: &mut String, delta: &Json, window: u64) {
    if delta.get("ready") != Some(&Json::Bool(true)) {
        out.push_str(&format!(
            "\nlast {window}s: not ready (waiting for samples to span the window)\n"
        ));
        return;
    }
    let seconds = delta.get("seconds").and_then(Json::as_f64).unwrap_or(0.0);
    out.push_str(&format!("\nlast {seconds:.1}s (windowed):\n"));
    let Some(Json::Obj(histograms)) = delta.get("histograms") else {
        return;
    };
    let mut rows: Vec<(&str, f64, f64, f64, f64)> = histograms
        .iter()
        .filter_map(|(name, summary)| {
            let route = name
                .strip_prefix("s2g_request_duration_ns{route=\"")?
                .strip_suffix("\"}")?;
            let get = |key: &str| summary.get(key).and_then(Json::as_f64).unwrap_or(0.0);
            Some((
                route,
                get("per_sec"),
                get("count"),
                get("p50_ns") / 1e6,
                get("p99_ns") / 1e6,
            ))
        })
        .collect();
    if rows.is_empty() {
        out.push_str("  (no external traffic in the window)\n");
        return;
    }
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    out.push_str(&format!(
        "  {:<34} {:>8} {:>8} {:>9} {:>9}\n",
        "route", "req/s", "count", "p50 ms", "p99 ms"
    ));
    for (route, per_sec, count, p50, p99) in rows {
        out.push_str(&format!(
            "  {route:<34} {per_sec:>8.1} {count:>8.0} {p50:>9.3} {p99:>9.3}\n"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let line = sparkline(&[0.0, 3.5, 7.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
    }

    #[test]
    fn ansi_only_for_a_tty_without_no_color() {
        // The NO_COLOR convention: any non-empty value disables escapes;
        // unset or empty defers to whether stdout is a terminal.
        assert!(ansi_enabled(None, true));
        assert!(ansi_enabled(Some(""), true));
        assert!(!ansi_enabled(Some("1"), true));
        assert!(!ansi_enabled(Some("anything"), true));
        assert!(!ansi_enabled(None, false));
        assert!(!ansi_enabled(Some("1"), false));
    }

    #[test]
    fn top_rejects_bad_flags() {
        let args: Vec<String> = vec!["--bogus".to_string()];
        assert!(matches!(cmd_top(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn top_against_nothing_is_a_runtime_error() {
        let args: Vec<String> = ["--addr", "127.0.0.1:1", "--once"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(cmd_top(&args), Err(CliError::Runtime(_))));
    }
}
