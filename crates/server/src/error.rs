//! Error handling of the serving layer: every failure maps to one HTTP
//! status plus a machine-readable error code, exactly as specified in
//! `docs/PROTOCOL.md`.

use crate::http::{ParseError, Response};
use crate::json::Json;

/// An API-level failure: HTTP status, stable error code, human message.
///
/// The `code` strings are part of the wire protocol (clients may switch on
/// them); the `message` is free-form diagnostic text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status the error is reported with.
    pub status: u16,
    /// Stable machine-readable error code (e.g. `"unknown_model"`).
    pub code: &'static str,
    /// Human-readable diagnostic message.
    pub message: String,
    /// When set, the response carries a `Retry-After: <seconds>` header
    /// (load-shed `429`s tell the client when to come back).
    pub retry_after: Option<u64>,
}

impl ApiError {
    /// Builds an error from its parts.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            code,
            message: message.into(),
            retry_after: None,
        }
    }

    /// This error with a `Retry-After` hint of `secs` seconds.
    #[must_use]
    pub fn with_retry_after(mut self, secs: u64) -> ApiError {
        self.retry_after = Some(secs);
        self
    }

    /// `429 overloaded` with a `Retry-After` hint — the admission gate's
    /// load-shed response.
    pub fn overloaded(message: impl Into<String>, retry_after_secs: u64) -> ApiError {
        ApiError::new(429, "overloaded", message).with_retry_after(retry_after_secs)
    }

    /// `400 bad_request`.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError::new(400, "bad_request", message)
    }

    /// `404 not_found`.
    pub fn not_found(message: impl Into<String>) -> ApiError {
        ApiError::new(404, "not_found", message)
    }

    /// The error rendered as its protocol JSON line,
    /// `{"error":code,"message":text}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("error", Json::from(self.code)),
            ("message", Json::from(self.message.clone())),
        ])
    }

    /// The error rendered as a complete HTTP response.
    pub fn to_response(&self) -> Response {
        Response {
            status: self.status,
            lines: vec![self.to_json().encode()],
            content_type: crate::http::CONTENT_TYPE_NDJSON,
            trace_id: None,
            retry_after: self.retry_after,
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}: {}", self.status, self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

impl From<ParseError> for ApiError {
    fn from(e: ParseError) -> Self {
        match e {
            ParseError::ConnectionClosed => {
                // Callers drop the connection instead of responding; this
                // mapping exists only for completeness.
                ApiError::bad_request("connection closed before a request was sent")
            }
            ParseError::Malformed(what) => ApiError::new(
                400,
                "malformed_request",
                format!("malformed request: {what}"),
            ),
            ParseError::UnknownMethod => {
                ApiError::new(405, "method_not_allowed", "unsupported request method")
            }
            ParseError::BodyTooLarge { declared, limit } => ApiError::new(
                413,
                "body_too_large",
                format!("declared body of {declared} bytes exceeds the {limit}-byte limit"),
            ),
            ParseError::Io(kind) => ApiError::new(
                400,
                "malformed_request",
                format!("request i/o failed: {kind:?}"),
            ),
        }
    }
}

impl From<s2g_engine::Error> for ApiError {
    fn from(e: s2g_engine::Error) -> Self {
        use s2g_engine::Error as E;
        match &e {
            E::UnknownModel(name) => {
                ApiError::new(404, "unknown_model", format!("no model named {name:?}"))
            }
            E::UnknownStream(id) => ApiError::new(
                404,
                "unknown_session",
                format!("no open session {id:?} (it may have been evicted)"),
            ),
            E::StreamExists(id) => ApiError::new(
                409,
                "session_exists",
                format!("session {id:?} already open"),
            ),
            E::Core(core) => ApiError::from_core(core, e.to_string()),
            E::PoolClosed => ApiError::new(503, "pool_closed", e.to_string()),
            // The queued work expired before a worker picked it up; the
            // client chose the budget, so this is unavailability, not a
            // client mistake.
            E::DeadlineExceeded => ApiError::new(503, "deadline_exceeded", e.to_string()),
            // The store refuses writes until its disk recovers; reads (and
            // therefore scoring) keep working, so only write routes see it.
            E::StoreDegraded => ApiError::new(503, "store_degraded", e.to_string()),
            // The task's compute panicked; the worker survived and the
            // request gets a clean 500 instead of a dropped connection.
            E::WorkerPanicked => ApiError::new(500, "worker_panicked", e.to_string()),
            // The name is syntactically fine HTTP but semantically unusable
            // as a model/store identifier.
            E::InvalidName(_) => ApiError::new(422, "invalid_name", e.to_string()),
            // Store failures (I/O, corrupt file discovered at fault time)
            // are server-side conditions, not client mistakes.
            E::Io(_) | E::Storage(_) => ApiError::new(500, "storage", e.to_string()),
            _ => ApiError::new(500, "internal", e.to_string()),
        }
    }
}

impl ApiError {
    fn from_core(core: &s2g_core::Error, message: String) -> ApiError {
        use s2g_core::Error as C;
        match core {
            // The posted data cannot produce / be scored by a model:
            // semantically invalid input rather than a malformed request.
            C::SeriesTooShort { .. } => ApiError::new(422, "series_too_short", message),
            C::QueryShorterThanPattern { .. } => ApiError::new(422, "query_too_short", message),
            C::DegenerateEmbedding(_) => ApiError::new(422, "degenerate_series", message),
            C::InvalidConfig(_) => ApiError::new(400, "invalid_config", message),
            _ => ApiError::new(500, "internal", message),
        }
    }
}

impl From<s2g_core::Error> for ApiError {
    fn from(e: s2g_core::Error) -> Self {
        let message = e.to_string();
        ApiError::from_core(&e, message)
    }
}

impl From<s2g_timeseries::Error> for ApiError {
    fn from(e: s2g_timeseries::Error) -> Self {
        ApiError::new(
            400,
            "invalid_csv",
            format!("could not parse series body: {e}"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_errors_map_to_protocol_statuses() {
        let e = ApiError::from(s2g_engine::Error::UnknownModel("m".into()));
        assert_eq!((e.status, e.code), (404, "unknown_model"));
        let e = ApiError::from(s2g_engine::Error::UnknownStream("s".into()));
        assert_eq!((e.status, e.code), (404, "unknown_session"));
        let e = ApiError::from(s2g_engine::Error::Core(
            s2g_core::Error::QueryShorterThanPattern {
                query_length: 10,
                pattern_length: 50,
            },
        ));
        assert_eq!((e.status, e.code), (422, "query_too_short"));
        let e = ApiError::from(s2g_core::Error::SeriesTooShort {
            series_len: 3,
            required: 100,
        });
        assert_eq!((e.status, e.code), (422, "series_too_short"));
    }

    #[test]
    fn error_json_shape() {
        let line = ApiError::not_found("nope").to_json().encode();
        assert_eq!(line, r#"{"error":"not_found","message":"nope"}"#);
    }
}
