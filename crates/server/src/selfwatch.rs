//! Self-watch: the server scoring its own telemetry for anomalies.
//!
//! Each sampler tick derives three operational signals from consecutive
//! flight-recorder samples — windowed external-request p99, windowed
//! pool queue-wait mean, store fault rate — and feeds them through
//! per-signal watchdogs. The first `watch_warmup` ticks are warm-up
//! telemetry: after them, each signal gets a `StreamingScorer` fitted on
//! its own warm-up series via `Engine::fit_watch_scorer` (Series2Graph
//! watching Series2Graph) — holdout-validated, and falling back to a
//! robust z-score watchdog when the warm-up series is too flat, short,
//! or unstructured to embed. Normality thresholds are calibrated from
//! the held-out warm-up scores, and the
//! `ok`/`degraded`/`anomalous` verdict of each signal advances through
//! the hysteresis machine in `s2g_obs::watch`, with every transition
//! logged (`warn!` when worsening).

use std::sync::Mutex;

use s2g_core::StreamingScorer;
use s2g_obs::journal::{self, JournalEvent, WatchEvent};
use s2g_obs::recorder::{Recorder, Sample};
use s2g_obs::watch::{
    calibrate_threshold, overall, Hysteresis, RobustScorer, SignalScorer, SignalWatch,
};

use crate::history;
use crate::json::Json;
use crate::server::Shared;

/// The watched signals, in column order of the warm-up matrix.
const SIGNALS: [&str; 3] = [
    "request_p99_ms",
    "queue_wait_mean_ms",
    "store_fault_per_sec",
];

/// Window length ℓ of the tiny self-watch models.
const WATCH_PATTERN_LEN: usize = 8;
/// Streaming query length ℓq fed to the self-watch scorers.
const WATCH_QUERY_LEN: usize = 16;
/// Threshold margin in robust sigmas below the worst warm-up score.
const THRESHOLD_SIGMAS: f64 = 4.0;

/// A fitted `StreamingScorer` behind the core-free [`SignalScorer`]
/// trait: one raw signal value in per tick, the window's normality out.
struct S2gSignalScorer(StreamingScorer);

impl SignalScorer for S2gSignalScorer {
    fn push(&mut self, value: f64) -> Option<f64> {
        self.0.push(value).ok().flatten().map(|(_, score)| score)
    }

    fn kind(&self) -> &'static str {
        "s2g"
    }
}

struct Inner {
    /// Last derived value per signal — carried forward through ticks
    /// whose window saw no traffic, so an idle lull never reads as a
    /// latency collapse.
    last: [f64; 3],
    /// Warm-up telemetry, one row per tick, until the scorers are fitted.
    collected: Vec<[f64; 3]>,
    /// The fitted watch board; `None` while warming up.
    watches: Option<Vec<SignalWatch>>,
}

/// The per-server self-watch state, driven by the sampler thread and
/// read by `GET /watch` / `GET /healthz`.
pub(crate) struct SelfWatch {
    warmup_target: usize,
    inner: Mutex<Inner>,
}

impl SelfWatch {
    /// A self-watch that fits its scorers after `warmup` sampler ticks
    /// (floored at 8 — below that there is nothing to calibrate on).
    pub(crate) fn new(warmup: usize) -> Self {
        SelfWatch {
            warmup_target: warmup.max(8),
            inner: Mutex::new(Inner {
                last: [0.0; 3],
                collected: Vec::new(),
                watches: None,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The healthz `watch` field: `warming` until the scorers are
    /// fitted, then the worst signal state.
    pub(crate) fn health_state(&self) -> &'static str {
        let inner = self.lock();
        match &inner.watches {
            None => "warming",
            Some(watches) => overall(watches).as_str(),
        }
    }

    /// One sampler tick: derive the signals from the delta between the
    /// previous and current flight-recorder samples, then either collect
    /// warm-up telemetry or advance the watch board.
    pub(crate) fn tick(&self, shared: &Shared, prev: Option<&Sample>, current: &Sample) {
        let Some(prev) = prev else {
            return; // first tick has no window yet
        };
        let mut inner = self.lock();
        let values = signal_values(prev, current, &inner.last);
        inner.last = values;
        if let Some(watches) = &mut inner.watches {
            for (watch, &value) in watches.iter_mut().zip(values.iter()) {
                if let Some(transition) = watch.observe(value) {
                    // Every transition becomes durable: the journal replays
                    // the board's history long after the process is gone.
                    if let Some(journal) = &shared.journal {
                        journal.publish(JournalEvent::Watch(WatchEvent {
                            wall_ms: journal::wall_ms_now(),
                            t_ns: s2g_obs::clock::now_ns(),
                            signal: watch.name().to_string(),
                            from: transition.from.as_str().to_string(),
                            to: transition.to.as_str().to_string(),
                            value,
                            score: watch.last_score().unwrap_or(f64::NAN),
                        }));
                    }
                    if transition.to > transition.from {
                        s2g_obs::warn!(
                            "selfwatch",
                            "signal {} {} -> {} (value {:.4}, score {:.4}, threshold {:.4})",
                            watch.name(),
                            transition.from,
                            transition.to,
                            value,
                            watch.last_score().unwrap_or(f64::NAN),
                            watch.threshold()
                        );
                    } else {
                        s2g_obs::info!(
                            "selfwatch",
                            "signal {} recovered: {} -> {}",
                            watch.name(),
                            transition.from,
                            transition.to
                        );
                    }
                }
            }
        } else {
            inner.collected.push(values);
            if inner.collected.len() >= self.warmup_target {
                let watches = fit_watches(shared, &inner.collected);
                for watch in &watches {
                    s2g_obs::info!(
                        "selfwatch",
                        "signal {} armed: scorer={} threshold={:.4}",
                        watch.name(),
                        watch.scorer_kind(),
                        watch.threshold()
                    );
                }
                inner.watches = Some(watches);
                inner.collected = Vec::new();
            }
        }
    }

    /// The watch board frozen for a postmortem: one [`WatchEvent`] per
    /// signal with `from == to` (a state *snapshot*, not a transition),
    /// carrying the last observed value and score. Warming boards report
    /// every signal as `"warming"`.
    pub(crate) fn postmortem_events(&self) -> Vec<WatchEvent> {
        let inner = self.lock();
        let wall_ms = journal::wall_ms_now();
        let t_ns = s2g_obs::clock::now_ns();
        match &inner.watches {
            None => SIGNALS
                .iter()
                .enumerate()
                .map(|(i, name)| WatchEvent {
                    wall_ms,
                    t_ns,
                    signal: (*name).to_string(),
                    from: "warming".to_string(),
                    to: "warming".to_string(),
                    value: inner.last[i],
                    score: f64::NAN,
                })
                .collect(),
            Some(watches) => watches
                .iter()
                .map(|watch| WatchEvent {
                    wall_ms,
                    t_ns,
                    signal: watch.name().to_string(),
                    from: watch.state().as_str().to_string(),
                    to: watch.state().as_str().to_string(),
                    value: watch.last_value().unwrap_or(f64::NAN),
                    score: watch.last_score().unwrap_or(f64::NAN),
                })
                .collect(),
        }
    }

    /// The `GET /watch` body.
    pub(crate) fn status_json(&self, recorder: &Recorder) -> Json {
        let inner = self.lock();
        let (state, collected) = match &inner.watches {
            None => ("warming".to_string(), inner.collected.len()),
            Some(watches) => (overall(watches).as_str().to_string(), self.warmup_target),
        };
        let signals: Vec<Json> = match &inner.watches {
            None => SIGNALS
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    Json::obj([
                        ("name", Json::from(*name)),
                        ("state", Json::from("warming")),
                        ("scorer", Json::Null),
                        ("threshold", Json::Null),
                        ("value", Json::from(inner.last[i])),
                        ("score", Json::Null),
                    ])
                })
                .collect(),
            Some(watches) => watches
                .iter()
                .map(|watch| {
                    Json::obj([
                        ("name", Json::from(watch.name())),
                        ("state", Json::from(watch.state().as_str())),
                        ("scorer", Json::from(watch.scorer_kind())),
                        ("threshold", Json::from(watch.threshold())),
                        ("value", watch.last_value().map_or(Json::Null, Json::from)),
                        ("score", watch.last_score().map_or(Json::Null, Json::from)),
                    ])
                })
                .collect(),
        };
        Json::obj([
            ("state", Json::from(state)),
            (
                "warmup",
                Json::obj([
                    ("target", Json::from(self.warmup_target)),
                    ("collected", Json::from(collected)),
                    ("complete", Json::from(inner.watches.is_some())),
                ]),
            ),
            (
                "sampler",
                Json::obj([
                    ("interval_ms", Json::from(recorder.interval_ms() as usize)),
                    ("retention", Json::from(recorder.retention())),
                    ("samples", Json::from(recorder.len())),
                ]),
            ),
            ("signals", Json::Arr(signals)),
        ])
    }
}

/// Derives the three signal values from one sampler window. Windows with
/// no traffic carry the previous value forward (`last`) instead of
/// reading as zero latency.
fn signal_values(prev: &Sample, current: &Sample, last: &[f64; 3]) -> [f64; 3] {
    let dt_secs = current.t_ns.saturating_sub(prev.t_ns) as f64 / 1e9;
    if dt_secs <= 0.0 {
        return *last;
    }
    let external = history::external_delta(prev, current);
    let request_p99_ms = if external.count > 0 {
        external.quantile(0.99) as f64 / 1e6
    } else {
        last[0]
    };
    let queue_wait = stage_delta(prev, current, "s2g_pool_queue_wait_ns");
    let queue_wait_mean_ms = match &queue_wait {
        Some(delta) if delta.count > 0 => delta.mean() / 1e6,
        _ => last[1],
    };
    let store_fault_per_sec = stage_delta(prev, current, "s2g_store_fault_ns")
        .map_or(0.0, |delta| delta.count as f64 / dt_secs);
    [request_p99_ms, queue_wait_mean_ms, store_fault_per_sec]
}

fn stage_delta(prev: &Sample, current: &Sample, name: &str) -> Option<s2g_obs::CompactHistogram> {
    let index = history::stage_index(name)?;
    Some(
        current
            .histograms
            .get(index)?
            .delta(prev.histograms.get(index)?),
    )
}

/// Fits one watchdog per signal on the warm-up telemetry: Series2Graph
/// when the series embeds, robust z-score otherwise, threshold
/// calibrated from the warm-up scores either way.
fn fit_watches(shared: &Shared, collected: &[[f64; 3]]) -> Vec<SignalWatch> {
    SIGNALS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let column: Vec<f64> = collected.iter().map(|row| row[i]).collect();
            let (scorer, scores) = fit_signal_scorer(shared, name, &column);
            let threshold = calibrate_threshold(&scores, THRESHOLD_SIGMAS);
            SignalWatch::new(name, scorer, threshold, Hysteresis::default())
        })
        .collect()
}

/// One signal's scorer plus its calibration scores. Tries the S2G
/// streaming path first with **holdout validation**: the model is fitted
/// on the first 60% of the warm-up only, then must keep the held-out
/// 40% strictly normal (enough scores, all positive). Replaying the
/// training data always scores well — only unseen telemetry reveals
/// whether the signal has repeating structure for the graph to embed; a
/// signal that is pure jitter at the sampling timescale collapses to
/// zero-normality on fresh data and would false-alarm forever. Such
/// signals (and fit failures, e.g. a constant series) fall back to the
/// robust z watchdog.
fn fit_signal_scorer(
    shared: &Shared,
    name: &str,
    column: &[f64],
) -> (Box<dyn SignalScorer>, Vec<f64>) {
    let split = column.len() * 3 / 5;
    match shared
        .engine
        .fit_watch_scorer(&column[..split], WATCH_PATTERN_LEN, WATCH_QUERY_LEN)
    {
        Ok(streaming) => {
            let mut scorer = S2gSignalScorer(streaming);
            // Warm the scorer through the training portion (scores over
            // fitted data are discarded), then score the holdout.
            for &value in &column[..split] {
                let _ = scorer.push(value);
            }
            let holdout: Vec<f64> = column[split..]
                .iter()
                .filter_map(|&v| scorer.push(v))
                .collect();
            if holdout.len() >= 4 && holdout.iter().all(|&s| s > 0.0) {
                return (Box::new(scorer), holdout);
            }
            s2g_obs::warn!(
                "selfwatch",
                "signal {name}: holdout rejected the streaming scorer \
                 ({} scores, min {:.4}), falling back to robust z",
                holdout.len(),
                holdout.iter().copied().fold(f64::INFINITY, f64::min)
            );
        }
        Err(e) => {
            s2g_obs::warn!(
                "selfwatch",
                "signal {name}: S2G warm-up fit failed ({e}), falling back to robust z"
            );
        }
    }
    let robust = RobustScorer::from_baseline(column)
        .unwrap_or_else(|| RobustScorer::from_baseline(&[0.0, 0.0, 0.0]).expect("3 values"));
    let mut probe = robust.clone();
    let scores: Vec<f64> = column.iter().filter_map(|&v| probe.push(v)).collect();
    (Box::new(robust), scores)
}
