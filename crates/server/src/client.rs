//! A minimal blocking client for the `s2g-server` protocol.
//!
//! [`Client`] opens one TCP connection per request (the server closes every
//! connection after responding), writes a protocol request and parses the
//! NDJSON response. The typed helpers cover every endpoint; [`Client::request`]
//! is the raw escape hatch.
//!
//! Float fidelity: score values cross the wire as JSON numbers in Rust's
//! shortest round-trip formatting, so the `f64`s this client returns are
//! **bit-identical** to the ones the server computed.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::json::{Json, JsonError};

/// Errors produced by the client.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing or reading the socket failed.
    Io(std::io::Error),
    /// The response was not parseable as the expected protocol shape.
    Protocol(String),
    /// The server answered with an error status; carries the protocol
    /// `error` code and `message` fields.
    Api {
        /// HTTP status of the error response.
        status: u16,
        /// Stable protocol error code (e.g. `"unknown_model"`).
        code: String,
        /// Human-readable server message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Api {
                status,
                code,
                message,
            } => write!(f, "server error {status} ({code}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<JsonError> for ClientError {
    fn from(e: JsonError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

/// A raw protocol response: HTTP status plus the NDJSON body lines.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Non-empty body lines, one JSON document each.
    pub lines: Vec<String>,
}

impl ClientResponse {
    /// Parses body line `index` as JSON.
    ///
    /// # Errors
    /// [`ClientError::Protocol`] when the line is missing or not JSON.
    pub fn json_line(&self, index: usize) -> Result<Json, ClientError> {
        let line = self
            .lines
            .get(index)
            .ok_or_else(|| ClientError::Protocol(format!("missing response line {index}")))?;
        Ok(Json::parse(line)?)
    }

    /// Converts an error-status response into [`ClientError::Api`]; returns
    /// `self` unchanged for 2xx statuses.
    ///
    /// # Errors
    /// [`ClientError::Api`] for non-2xx statuses.
    pub fn into_result(self) -> Result<ClientResponse, ClientError> {
        if (200..300).contains(&self.status) {
            return Ok(self);
        }
        let (code, message) = match self.json_line(0) {
            Ok(body) => (
                body.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                body.get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            ),
            Err(_) => ("unknown".to_string(), self.lines.join(" ")),
        };
        Err(ClientError::Api {
            status: self.status,
            code,
            message,
        })
    }
}

/// A blocking client addressing one `s2g-server` instance.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// Creates a client for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(60),
        }
    }

    /// Sets the per-request socket timeout (default 60 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends one request and reads the full response. `target` is the path
    /// plus optional query string, e.g. `/models/m/score?query_length=150`.
    ///
    /// # Errors
    /// [`ClientError::Io`] on socket failures, [`ClientError::Protocol`] on
    /// responses outside the protocol subset. Error *statuses* are returned
    /// as `Ok` — use [`ClientResponse::into_result`] to surface them.
    pub fn request(
        &self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        let write_result = stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body))
            .and_then(|()| stream.flush());

        // The server closes the connection after one response. A failed
        // write does not end the exchange: the server may have rejected
        // the request early (e.g. 413 before reading an over-cap body) and
        // its response can still be readable — prefer that response over
        // the local broken-pipe error.
        let mut raw = Vec::new();
        let read_result = stream.read_to_end(&mut raw);
        if !raw.is_empty() {
            if let Ok(response) = parse_response(&raw) {
                return Ok(response);
            }
        }
        write_result?;
        read_result?;
        parse_response(&raw)
    }

    /// Like [`Client::request`], turning error statuses into
    /// [`ClientError::Api`].
    ///
    /// # Errors
    /// See [`Client::request`] and [`ClientResponse::into_result`].
    pub fn request_ok(
        &self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        self.request(method, target, body)?.into_result()
    }

    // -- typed endpoint helpers --------------------------------------------

    /// `GET /healthz`.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn health(&self) -> Result<Json, ClientError> {
        self.request_ok("GET", "/healthz", b"")?.json_line(0)
    }

    /// `GET /metrics`: the plain-text exposition lines
    /// (`name{labels} value`), verbatim.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn metrics(&self) -> Result<Vec<String>, ClientError> {
        Ok(self.request_ok("GET", "/metrics", b"")?.lines)
    }

    /// `PUT /models/{name}?{query}` with a CSV body (one value per line):
    /// fits and registers a model server-side. Returns the metadata object
    /// (including the `"checksum"` fingerprint).
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn fit_model(&self, name: &str, query: &str, csv_body: &str) -> Result<Json, ClientError> {
        let target = format!("/models/{name}?{query}");
        self.request_ok("PUT", &target, csv_body.as_bytes())?
            .json_line(0)
    }

    /// `GET /models`: metadata for every registered model.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn list_models(&self) -> Result<Vec<Json>, ClientError> {
        let body = self.request_ok("GET", "/models", b"")?.json_line(0)?;
        let models = body
            .get("models")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("response lacks \"models\" array".into()))?;
        Ok(models.to_vec())
    }

    /// `GET /models/{name}`: metadata for one model.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn model_info(&self, name: &str) -> Result<Json, ClientError> {
        self.request_ok("GET", &format!("/models/{name}"), b"")?
            .json_line(0)
    }

    /// `DELETE /models/{name}`.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn delete_model(&self, name: &str) -> Result<(), ClientError> {
        self.request_ok("DELETE", &format!("/models/{name}"), b"")?;
        Ok(())
    }

    /// `POST /models/{name}/score?query_length=…`: scores a batch of series
    /// (one per line, comma-separated) and returns one result per series in
    /// submission order. Per-series failures surface as `Err` slots with
    /// the protocol error code.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or request-level server
    /// errors (e.g. an unknown model).
    #[allow(clippy::type_complexity)]
    pub fn score(
        &self,
        name: &str,
        query_length: usize,
        series: &[Vec<f64>],
    ) -> Result<Vec<Result<Vec<f64>, (String, String)>>, ClientError> {
        let mut body = String::new();
        for (index, values) in series.iter().enumerate() {
            if values.is_empty() {
                // An empty series would serialize to a blank line, which
                // the server skips — shifting every later result onto the
                // wrong series. Refuse it up front instead.
                return Err(ClientError::Protocol(format!("series {index} is empty")));
            }
            let line: Vec<String> = values.iter().map(f64::to_string).collect();
            body.push_str(&line.join(","));
            body.push('\n');
        }
        let target = format!("/models/{name}/score?query_length={query_length}");
        let response = self.request_ok("POST", &target, body.as_bytes())?;
        if response.lines.len() != series.len() {
            return Err(ClientError::Protocol(format!(
                "scored {} series but received {} result lines",
                series.len(),
                response.lines.len()
            )));
        }
        let mut out = Vec::with_capacity(series.len());
        for index in 0..response.lines.len() {
            let line = response.json_line(index)?;
            if let Some(scores) = line.get("scores").and_then(Json::as_f64_array) {
                out.push(Ok(scores));
            } else {
                let code = line
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string();
                let message = line
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                out.push(Err((code, message)));
            }
        }
        Ok(out)
    }

    /// `POST /sessions`: opens a pinned streaming session, returning its id.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn open_session(&self, model: &str, query_length: usize) -> Result<String, ClientError> {
        self.open_session_with(model, query_length, None)
    }

    /// `POST /sessions` with adaptation options: `adapt` is the value of
    /// the body's `"adapt"` member — `Json::Bool(true)` for server
    /// defaults, or an object overriding fields (`lambda`,
    /// `normal_quantile`, `drift_window`, `drift_threshold`,
    /// `publish_interval`, `refit_buffer`, `refit_cooldown`).
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn open_session_with(
        &self,
        model: &str,
        query_length: usize,
        adapt: Option<Json>,
    ) -> Result<String, ClientError> {
        let mut pairs = vec![
            ("model".to_string(), Json::from(model)),
            ("query_length".to_string(), Json::from(query_length)),
        ];
        if let Some(adapt) = adapt {
            pairs.push(("adapt".to_string(), adapt));
        }
        let body = Json::Obj(pairs).encode();
        let response = self.request_ok("POST", "/sessions", body.as_bytes())?;
        let id = response
            .json_line(0)?
            .get("session")
            .and_then(Json::as_str)
            .ok_or_else(|| ClientError::Protocol("response lacks \"session\" id".into()))?
            .to_string();
        Ok(id)
    }

    /// `POST /sessions/{id}/push`: feeds values (one per line over the
    /// wire), returning the emitted `(window_start, normality)` pairs.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors (including
    /// `unknown_session` after idle eviction).
    pub fn push_session(&self, id: &str, values: &[f64]) -> Result<Vec<(usize, f64)>, ClientError> {
        Ok(self.push_session_detailed(id, values)?.0)
    }

    /// Like [`Client::push_session`], additionally returning the session's
    /// `"adapt"` status object (updates, refits, action, drift stats,
    /// published checksum) — present for adaptive sessions, `None` for
    /// frozen ones.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    #[allow(clippy::type_complexity)]
    pub fn push_session_detailed(
        &self,
        id: &str,
        values: &[f64],
    ) -> Result<(Vec<(usize, f64)>, Option<Json>), ClientError> {
        let body: String = values.iter().map(|v| format!("{v}\n")).collect();
        let target = format!("/sessions/{id}/push");
        let response = self.request_ok("POST", &target, body.as_bytes())?;
        let line = response.json_line(0)?;
        let emitted = line
            .get("emitted")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("response lacks \"emitted\" array".into()))?;
        let pairs = emitted
            .iter()
            .map(|pair| {
                let items = pair.as_array().unwrap_or(&[]);
                match (
                    items.first().and_then(Json::as_usize),
                    items.get(1).and_then(Json::as_f64),
                ) {
                    (Some(start), Some(normality)) => Ok((start, normality)),
                    _ => Err(ClientError::Protocol("malformed emitted pair".into())),
                }
            })
            .collect::<Result<Vec<(usize, f64)>, ClientError>>()?;
        Ok((pairs, line.get("adapt").cloned()))
    }

    /// `DELETE /sessions/{id}`: closes a session, returning how many points
    /// it consumed.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn close_session(&self, id: &str) -> Result<usize, ClientError> {
        let response = self.request_ok("DELETE", &format!("/sessions/{id}"), b"")?;
        response
            .json_line(0)?
            .get("consumed")
            .and_then(Json::as_usize)
            .ok_or_else(|| ClientError::Protocol("response lacks \"consumed\"".into()))
    }

    /// `POST /admin/shutdown`: asks the server to stop.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn shutdown_server(&self) -> Result<(), ClientError> {
        self.request_ok("POST", "/admin/shutdown", b"")?;
        Ok(())
    }
}

fn parse_response(raw: &[u8]) -> Result<ClientResponse, ClientError> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| ClientError::Protocol("response without header terminator".into()))?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| ClientError::Protocol("non-UTF-8 response head".into()))?;
    let status_line = head
        .lines()
        .next()
        .ok_or_else(|| ClientError::Protocol("empty response".into()))?;
    // `HTTP/1.1 200 OK`
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
    let body = std::str::from_utf8(&raw[header_end + 4..])
        .map_err(|_| ClientError::Protocol("non-UTF-8 response body".into()))?;
    let lines = body
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_string)
        .collect();
    Ok(ClientResponse { status, lines })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_response_splits_status_and_lines() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Type: application/x-ndjson\r\nContent-Length: 20\r\n\r\n{\"error\":\"x\"}\n";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 404);
        assert_eq!(response.lines, vec!["{\"error\":\"x\"}".to_string()]);
        assert!(matches!(
            response.into_result(),
            Err(ClientError::Api { status: 404, .. })
        ));
    }

    #[test]
    fn parse_response_rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
