//! A minimal blocking client for the `s2g-server` protocol.
//!
//! [`Client`] writes protocol requests and parses NDJSON responses over
//! **persistent** connections: it sends `Connection: keep-alive`, frames
//! responses by `Content-Length`, and when the server agrees to keep the
//! socket open, pools it for the next request — one TCP + one round-trip
//! saved per call. A pooled socket the server has since idle-closed is
//! detected on reuse and transparently replaced by a fresh connection.
//! The typed helpers cover every endpoint; [`Client::request`] is the raw
//! escape hatch.
//!
//! Float fidelity: score values cross the wire as JSON numbers in Rust's
//! shortest round-trip formatting, so the `f64`s this client returns are
//! **bit-identical** to the ones the server computed.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::{Json, JsonError};

/// Errors produced by the client.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing or reading the socket failed.
    Io(std::io::Error),
    /// The response was not parseable as the expected protocol shape.
    Protocol(String),
    /// The server answered with an error status; carries the protocol
    /// `error` code and `message` fields.
    Api {
        /// HTTP status of the error response.
        status: u16,
        /// Stable protocol error code (e.g. `"unknown_model"`).
        code: String,
        /// Human-readable server message.
        message: String,
    },
    /// The server is temporarily unable to take the request (`429` from
    /// the admission gate, `503` from a degraded store, an expired
    /// deadline, or a closing pool) — retrying later may succeed, and
    /// [`RetryPolicy`] does so automatically for idempotent requests.
    Unavailable {
        /// HTTP status (`429` or `503`).
        status: u16,
        /// Stable protocol error code (e.g. `"overloaded"`,
        /// `"store_degraded"`, `"deadline_exceeded"`).
        code: String,
        /// Human-readable server message.
        message: String,
        /// The server's `Retry-After` hint, when it sent one.
        retry_after: Option<Duration>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Api {
                status,
                code,
                message,
            } => write!(f, "server error {status} ({code}): {message}"),
            ClientError::Unavailable {
                status,
                code,
                message,
                retry_after,
            } => {
                write!(f, "server unavailable {status} ({code}): {message}")?;
                if let Some(after) = retry_after {
                    write!(f, " (retry after {} s)", after.as_secs())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<JsonError> for ClientError {
    fn from(e: JsonError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

/// A raw protocol response: HTTP status plus the NDJSON body lines.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Non-empty body lines, one JSON document each.
    pub lines: Vec<String>,
    /// The `Retry-After` header in seconds, when the server sent one
    /// (load-shed `429`s do).
    pub retry_after: Option<u64>,
}

impl ClientResponse {
    /// Parses body line `index` as JSON.
    ///
    /// # Errors
    /// [`ClientError::Protocol`] when the line is missing or not JSON.
    pub fn json_line(&self, index: usize) -> Result<Json, ClientError> {
        let line = self
            .lines
            .get(index)
            .ok_or_else(|| ClientError::Protocol(format!("missing response line {index}")))?;
        Ok(Json::parse(line)?)
    }

    /// Converts an error-status response into a typed error; returns
    /// `self` unchanged for 2xx statuses.
    ///
    /// # Errors
    /// [`ClientError::Unavailable`] for `429`/`503` (carrying the
    /// `Retry-After` hint), [`ClientError::Api`] for every other non-2xx
    /// status.
    pub fn into_result(self) -> Result<ClientResponse, ClientError> {
        if (200..300).contains(&self.status) {
            return Ok(self);
        }
        let (code, message) = match self.json_line(0) {
            Ok(body) => (
                body.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                body.get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            ),
            Err(_) => ("unknown".to_string(), self.lines.join(" ")),
        };
        if matches!(self.status, 429 | 503) {
            return Err(ClientError::Unavailable {
                status: self.status,
                code,
                message,
                retry_after: self.retry_after.map(Duration::from_secs),
            });
        }
        Err(ClientError::Api {
            status: self.status,
            code,
            message,
        })
    }
}

/// How a [`Client`] retries unavailability responses (`429`/`503`).
///
/// Only **idempotent** requests (GET, PUT, DELETE) are ever retried —
/// resending a session push or a shutdown could execute it twice. Each
/// wait is exponential backoff with jitter (so a shed fleet does not
/// re-arrive in lockstep), floored by the server's `Retry-After` hint
/// when one was sent, and the total time spent waiting is capped by
/// `budget`.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum retry attempts after the initial request.
    pub max_retries: u32,
    /// Base backoff: attempt `n` waits a jittered value of roughly
    /// `base_delay * 2^n`.
    pub base_delay: Duration,
    /// Ceiling on any single backoff wait (the `Retry-After` floor may
    /// still exceed it).
    pub max_delay: Duration,
    /// Total wait budget across all retries of one request; once spent,
    /// the unavailability error surfaces to the caller.
    pub budget: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            budget: Duration::from_secs(10),
        }
    }
}

impl RetryPolicy {
    /// The wait before retry `attempt` (0-based): jittered exponential
    /// backoff, floored by the server's `Retry-After` hint.
    fn delay(&self, attempt: u32, retry_after: Option<Duration>) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16).min(31));
        // Jitter across [exp/2, exp]: desynchronises a shed fleet without
        // ever waiting less than half the intended backoff.
        let nanos = u64::try_from(exp.as_nanos()).unwrap_or(u64::MAX);
        let half = nanos / 2;
        let span = nanos - half + 1;
        let wait = Duration::from_nanos(half + jitter() % span).min(self.max_delay);
        match retry_after {
            Some(hint) => wait.max(hint),
            None => wait,
        }
    }
}

/// A jitter draw seeded from the wall clock — good enough to spread a
/// retrying fleet, with no RNG dependency.
fn jitter() -> u64 {
    let mut x = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0x9e37_79b9, |d| u64::from(d.subsec_nanos()))
        | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// A blocking client addressing one `s2g-server` instance.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
    /// When set, [`Client::request_ok`] retries unavailability responses
    /// for idempotent requests under this policy.
    retry: Option<RetryPolicy>,
    /// The keep-alive socket left over from the previous request, if the
    /// server kept it open. One exchange *takes* the socket out under the
    /// lock, so concurrent requests through clones never serialise on each
    /// other — they simply open fresh connections.
    pooled: Arc<Mutex<Option<TcpStream>>>,
}

impl Client {
    /// Creates a client for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(60),
            retry: None,
            pooled: Arc::new(Mutex::new(None)),
        }
    }

    /// Sets the per-request socket timeout (default 60 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Enables automatic retries of `429`/`503` responses for idempotent
    /// requests (see [`RetryPolicy`]; off by default).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Client {
        self.retry = Some(policy);
        self
    }

    fn take_pooled(&self) -> Option<TcpStream> {
        self.pooled.lock().unwrap_or_else(|e| e.into_inner()).take()
    }

    fn store_pooled(&self, stream: Option<TcpStream>) {
        *self.pooled.lock().unwrap_or_else(|e| e.into_inner()) = stream;
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends one request and reads the full response. `target` is the path
    /// plus optional query string, e.g. `/models/m/score?query_length=150`.
    ///
    /// # Errors
    /// [`ClientError::Io`] on socket failures, [`ClientError::Protocol`] on
    /// responses outside the protocol subset. Error *statuses* are returned
    /// as `Ok` — use [`ClientResponse::into_result`] to surface them.
    pub fn request(
        &self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        // Reuse the pooled keep-alive socket first. A pooled socket may
        // have been idle-closed by the server while it sat in the pool —
        // the classic keep-alive race. The common form of the race is
        // caught *before any bytes are sent*: the server's FIN is already
        // in the socket, so a cheap liveness probe detects it and a fresh
        // connection is used instead — always safe, nothing was sent.
        //
        // A stale-looking failure *after* the request went out (EOF/reset
        // with zero response bytes) is silently retried only for GET:
        // a server that died after executing but before responding is
        // indistinguishable from one that closed before reading, and
        // resending a non-idempotent request (a session push, a delete)
        // could execute it twice — those surface to the caller instead.
        if let Some(stream) = self.take_pooled().filter(pooled_socket_alive) {
            match self.exchange(stream, method, target, body) {
                Ok((response, reusable)) => {
                    self.store_pooled(reusable);
                    return Ok(response);
                }
                Err(e) if method != "GET" || !stale_socket_error(&e) => return Err(e),
                Err(_) => {} // stale pooled socket under GET: reconnect
            }
        }
        let stream = TcpStream::connect(&self.addr)?;
        let (response, reusable) = self.exchange(stream, method, target, body)?;
        self.store_pooled(reusable);
        Ok(response)
    }

    /// Runs one request/response exchange on `stream`. Returns the parsed
    /// response plus the stream itself when the server kept the connection
    /// open (`Connection: keep-alive` on a fully successful exchange).
    fn exchange(
        &self,
        mut stream: TcpStream,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<(ClientResponse, Option<TcpStream>), ClientError> {
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        // One write per request (and no Nagle): on a reused connection a
        // separate body segment would wait out the server's delayed ACK.
        let _ = stream.set_nodelay(true);
        let mut wire = format!(
            "{method} {target} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.addr,
            body.len()
        )
        .into_bytes();
        wire.extend_from_slice(body);
        let write_result = stream.write_all(&wire).and_then(|()| stream.flush());

        // A failed write does not end the exchange: the server may have
        // rejected the request early (e.g. 413 before reading an over-cap
        // body) and its response can still be readable — prefer that
        // response over the local broken-pipe error. A half-written
        // request never leaves the socket reusable.
        match read_framed_response(&mut stream) {
            Ok((response, server_keeps)) => {
                let reusable = write_result.is_ok() && server_keeps;
                Ok((response, reusable.then_some(stream)))
            }
            Err(read_error) => {
                write_result?;
                Err(read_error)
            }
        }
    }

    /// Like [`Client::request`], turning error statuses into typed errors
    /// ([`ClientError::Unavailable`] for `429`/`503`, [`ClientError::Api`]
    /// otherwise). With a [`RetryPolicy`] configured, unavailability
    /// responses to **idempotent** requests (GET, PUT, DELETE) are retried
    /// under it; everything else surfaces immediately.
    ///
    /// # Errors
    /// See [`Client::request`] and [`ClientResponse::into_result`].
    pub fn request_ok(
        &self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let idempotent = matches!(method, "GET" | "PUT" | "DELETE");
        let mut attempt = 0u32;
        let mut spent = Duration::ZERO;
        loop {
            let error = match self.request(method, target, body)?.into_result() {
                Err(e @ ClientError::Unavailable { .. }) => e,
                other => return other,
            };
            let Some(policy) = self.retry.as_ref().filter(|_| idempotent) else {
                return Err(error);
            };
            if attempt >= policy.max_retries {
                return Err(error);
            }
            let retry_after = match &error {
                ClientError::Unavailable { retry_after, .. } => *retry_after,
                _ => None,
            };
            let wait = policy.delay(attempt, retry_after);
            if spent + wait > policy.budget {
                return Err(error);
            }
            std::thread::sleep(wait);
            spent += wait;
            attempt += 1;
        }
    }

    // -- typed endpoint helpers --------------------------------------------

    /// `GET /healthz`.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn health(&self) -> Result<Json, ClientError> {
        self.request_ok("GET", "/healthz", b"")?.json_line(0)
    }

    /// `GET /metrics`: the plain-text exposition lines
    /// (`name{labels} value`), verbatim.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn metrics(&self) -> Result<Vec<String>, ClientError> {
        Ok(self.request_ok("GET", "/metrics", b"")?.lines)
    }

    /// `GET /metrics/json`: the machine-readable metrics summary —
    /// gauges plus per-route and per-stage latency histograms
    /// (count/sum/max/mean and p50/p95/p99).
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn metrics_json(&self) -> Result<Json, ClientError> {
        self.request_ok("GET", "/metrics/json", b"")?.json_line(0)
    }

    /// `GET /metrics/history?window=&step=`: the flight recorder's
    /// retained telemetry series (cumulative per-sample summaries plus
    /// the series schema). `window` is in seconds, `0` = everything
    /// retained; `step` keeps every Nth sample.
    ///
    /// # Errors
    /// [`ClientError`] on connection or protocol errors; `404 not_found`
    /// surfaces as [`ClientError::Api`] when sampling is disabled.
    pub fn metrics_history(&self, window_secs: u64, step: usize) -> Result<Json, ClientError> {
        let target = format!("/metrics/history?window={window_secs}&step={step}");
        self.request_ok("GET", &target, b"")?.json_line(0)
    }

    /// `GET /metrics/delta?window=`: counter rates and windowed latency
    /// summaries over the last `window` seconds of retained samples.
    ///
    /// # Errors
    /// [`ClientError`] on connection or protocol errors; `404 not_found`
    /// surfaces as [`ClientError::Api`] when sampling is disabled.
    pub fn metrics_delta(&self, window_secs: u64) -> Result<Json, ClientError> {
        let target = format!("/metrics/delta?window={window_secs}");
        self.request_ok("GET", &target, b"")?.json_line(0)
    }

    /// `GET /watch`: the self-watch board — overall state, warm-up
    /// progress, and per-signal scorer/threshold/score.
    ///
    /// # Errors
    /// [`ClientError`] on connection or protocol errors; `404 not_found`
    /// surfaces as [`ClientError::Api`] when sampling is disabled.
    pub fn watch(&self) -> Result<Json, ClientError> {
        self.request_ok("GET", "/watch", b"")?.json_line(0)
    }

    /// `GET /metrics/journal`: writer health of the durable telemetry
    /// journal — segments, bytes on disk, events written/shed, rotations.
    ///
    /// # Errors
    /// [`ClientError`] on connection or protocol errors; `404 not_found`
    /// surfaces as [`ClientError::Api`] when journaling is disabled.
    pub fn metrics_journal(&self) -> Result<Json, ClientError> {
        self.request_ok("GET", "/metrics/journal", b"")?
            .json_line(0)
    }

    /// `GET /debug/trace/{id}`: the span tree of one retained trace
    /// (ids come from the `X-S2g-Trace` response header or
    /// [`Client::slow_traces`]).
    ///
    /// # Errors
    /// [`ClientError`] on connection or protocol errors; `404 not_found`
    /// surfaces as [`ClientError::Api`] when the trace is no longer
    /// retained.
    pub fn trace(&self, id: &str) -> Result<Json, ClientError> {
        self.request_ok("GET", &format!("/debug/trace/{id}"), b"")?
            .json_line(0)
    }

    /// `GET /debug/slow`: the retained slow-request traces and the active
    /// threshold.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn slow_traces(&self) -> Result<Json, ClientError> {
        self.request_ok("GET", "/debug/slow", b"")?.json_line(0)
    }

    /// `PUT /models/{name}?{query}` with a CSV body (one value per line):
    /// fits and registers a model server-side. Returns the metadata object
    /// (including the `"checksum"` fingerprint).
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn fit_model(&self, name: &str, query: &str, csv_body: &str) -> Result<Json, ClientError> {
        let target = format!("/models/{name}?{query}");
        self.request_ok("PUT", &target, csv_body.as_bytes())?
            .json_line(0)
    }

    /// `GET /models`: metadata for every registered model.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn list_models(&self) -> Result<Vec<Json>, ClientError> {
        let body = self.request_ok("GET", "/models", b"")?.json_line(0)?;
        let models = body
            .get("models")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("response lacks \"models\" array".into()))?;
        Ok(models.to_vec())
    }

    /// `GET /models/{name}`: metadata for one model.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn model_info(&self, name: &str) -> Result<Json, ClientError> {
        self.request_ok("GET", &format!("/models/{name}"), b"")?
            .json_line(0)
    }

    /// `DELETE /models/{name}`.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn delete_model(&self, name: &str) -> Result<(), ClientError> {
        self.request_ok("DELETE", &format!("/models/{name}"), b"")?;
        Ok(())
    }

    /// `POST /models/{name}/score?query_length=…`: scores a batch of series
    /// (one per line, comma-separated) and returns one result per series in
    /// submission order. Per-series failures surface as `Err` slots with
    /// the protocol error code.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or request-level server
    /// errors (e.g. an unknown model).
    #[allow(clippy::type_complexity)]
    pub fn score(
        &self,
        name: &str,
        query_length: usize,
        series: &[Vec<f64>],
    ) -> Result<Vec<Result<Vec<f64>, (String, String)>>, ClientError> {
        let mut body = String::new();
        for (index, values) in series.iter().enumerate() {
            if values.is_empty() {
                // An empty series would serialize to a blank line, which
                // the server skips — shifting every later result onto the
                // wrong series. Refuse it up front instead.
                return Err(ClientError::Protocol(format!("series {index} is empty")));
            }
            let line: Vec<String> = values.iter().map(f64::to_string).collect();
            body.push_str(&line.join(","));
            body.push('\n');
        }
        let target = format!("/models/{name}/score?query_length={query_length}");
        let response = self.request_ok("POST", &target, body.as_bytes())?;
        if response.lines.len() != series.len() {
            return Err(ClientError::Protocol(format!(
                "scored {} series but received {} result lines",
                series.len(),
                response.lines.len()
            )));
        }
        let mut out = Vec::with_capacity(series.len());
        for index in 0..response.lines.len() {
            let line = response.json_line(index)?;
            if let Some(scores) = line.get("scores").and_then(Json::as_f64_array) {
                out.push(Ok(scores));
            } else {
                let code = line
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string();
                let message = line
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                out.push(Err((code, message)));
            }
        }
        Ok(out)
    }

    /// `POST /sessions`: opens a pinned streaming session, returning its id.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn open_session(&self, model: &str, query_length: usize) -> Result<String, ClientError> {
        self.open_session_with(model, query_length, None)
    }

    /// `POST /sessions` with adaptation options: `adapt` is the value of
    /// the body's `"adapt"` member — `Json::Bool(true)` for server
    /// defaults, or an object overriding fields (`lambda`,
    /// `normal_quantile`, `drift_window`, `drift_threshold`,
    /// `publish_interval`, `refit_buffer`, `refit_cooldown`).
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn open_session_with(
        &self,
        model: &str,
        query_length: usize,
        adapt: Option<Json>,
    ) -> Result<String, ClientError> {
        let mut pairs = vec![
            ("model".to_string(), Json::from(model)),
            ("query_length".to_string(), Json::from(query_length)),
        ];
        if let Some(adapt) = adapt {
            pairs.push(("adapt".to_string(), adapt));
        }
        let body = Json::Obj(pairs).encode();
        let response = self.request_ok("POST", "/sessions", body.as_bytes())?;
        let id = response
            .json_line(0)?
            .get("session")
            .and_then(Json::as_str)
            .ok_or_else(|| ClientError::Protocol("response lacks \"session\" id".into()))?
            .to_string();
        Ok(id)
    }

    /// `POST /sessions/{id}/push`: feeds values (one per line over the
    /// wire), returning the emitted `(window_start, normality)` pairs.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors (including
    /// `unknown_session` after idle eviction).
    pub fn push_session(&self, id: &str, values: &[f64]) -> Result<Vec<(usize, f64)>, ClientError> {
        Ok(self.push_session_detailed(id, values)?.0)
    }

    /// Like [`Client::push_session`], additionally returning the session's
    /// `"adapt"` status object (updates, refits, action, drift stats,
    /// published checksum) — present for adaptive sessions, `None` for
    /// frozen ones.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    #[allow(clippy::type_complexity)]
    pub fn push_session_detailed(
        &self,
        id: &str,
        values: &[f64],
    ) -> Result<(Vec<(usize, f64)>, Option<Json>), ClientError> {
        let body: String = values.iter().map(|v| format!("{v}\n")).collect();
        let target = format!("/sessions/{id}/push");
        let response = self.request_ok("POST", &target, body.as_bytes())?;
        let line = response.json_line(0)?;
        let emitted = line
            .get("emitted")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("response lacks \"emitted\" array".into()))?;
        let pairs = emitted
            .iter()
            .map(|pair| {
                let items = pair.as_array().unwrap_or(&[]);
                match (
                    items.first().and_then(Json::as_usize),
                    items.get(1).and_then(Json::as_f64),
                ) {
                    (Some(start), Some(normality)) => Ok((start, normality)),
                    _ => Err(ClientError::Protocol("malformed emitted pair".into())),
                }
            })
            .collect::<Result<Vec<(usize, f64)>, ClientError>>()?;
        Ok((pairs, line.get("adapt").cloned()))
    }

    /// `DELETE /sessions/{id}`: closes a session, returning how many points
    /// it consumed.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn close_session(&self, id: &str) -> Result<usize, ClientError> {
        let response = self.request_ok("DELETE", &format!("/sessions/{id}"), b"")?;
        response
            .json_line(0)?
            .get("consumed")
            .and_then(Json::as_usize)
            .ok_or_else(|| ClientError::Protocol("response lacks \"consumed\"".into()))
    }

    /// `POST /admin/shutdown`: asks the server to stop.
    ///
    /// # Errors
    /// [`ClientError`] on connection, protocol or server errors.
    pub fn shutdown_server(&self) -> Result<(), ClientError> {
        self.request_ok("POST", "/admin/shutdown", b"")?;
        Ok(())
    }
}

/// `true` when a just-unpooled socket is still usable: no EOF, no error,
/// no unsolicited bytes waiting (a non-blocking peek). Detects the common
/// stale-keep-alive case — the server idle-closed the pooled socket, its
/// FIN already delivered — before anything is sent, which is the only
/// point where switching to a fresh connection is unconditionally safe.
fn pooled_socket_alive(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let alive = match stream.peek(&mut [0u8; 1]) {
        Ok(0) => false,                                               // EOF: server closed
        Ok(_) => false, // unsolicited bytes: protocol state unknown, drop it
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => true, // quiet and open
        Err(_) => false,
    };
    alive && stream.set_nonblocking(false).is_ok()
}

/// `true` when a request failure shows the peer closed or reset the
/// connection **before any byte of a response arrived** — the keep-alive
/// race a client may retry on a fresh connection for idempotent requests.
/// Timeouts and partial responses are deliberately excluded: there the
/// request may have been executed, and a resend would double
/// non-idempotent operations. (The zero-byte signature itself cannot
/// distinguish "never read the request" from "died after executing it",
/// which is why even this retry is restricted to GET by the caller.)
fn stale_socket_error(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Io(io) if matches!(
            io.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::NotConnected
        )
    )
}

/// Reads exactly one `Content-Length`-framed response from a (possibly
/// persistent) connection. Returns the parsed response and whether the
/// server advertised `Connection: keep-alive` — i.e. whether the socket can
/// carry another request.
fn read_framed_response(stream: &mut TcpStream) -> Result<(ClientResponse, bool), ClientError> {
    const MAX_HEAD: usize = 64 * 1024;
    let mut raw = Vec::new();
    let mut chunk = [0u8; 2048];
    let header_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        if raw.len() > MAX_HEAD {
            return Err(ClientError::Protocol("response head too large".into()));
        }
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            // Once any response byte has arrived the server has started
            // executing/answering the request, so a subsequent failure
            // (reset, timeout) must NOT look like the stale-socket race —
            // map it to Protocol so the caller never silently retries a
            // request that may have been executed.
            Err(e) if !raw.is_empty() => {
                return Err(ClientError::Protocol(format!(
                    "connection broken mid-response: {e}"
                )));
            }
            Err(e) => return Err(ClientError::Io(e)),
        };
        if n == 0 && raw.is_empty() {
            // Clean close before any response byte: the stale-pooled-socket
            // signature ([`stale_socket_error`]), kept distinguishable from
            // a mid-response truncation.
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before any response byte",
            )));
        }
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed before a full response head".into(),
            ));
        }
        raw.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| ClientError::Protocol("non-UTF-8 response head".into()))?;
    let mut content_length: Option<usize> = None;
    let mut keep_alive = false;
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().ok();
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
        }
    }
    let content_length = content_length
        .ok_or_else(|| ClientError::Protocol("response without Content-Length".into()))?;

    // Pull in exactly the declared body (part of it may already sit in
    // `raw` behind the head).
    let body_start = header_end + 4;
    let have = raw.len() - body_start;
    if have < content_length {
        let old_len = raw.len();
        raw.resize(body_start + content_length, 0);
        // The head already arrived, so a body-read failure is mid-response
        // by definition — never the retriable stale-socket race.
        stream
            .read_exact(&mut raw[old_len..])
            .map_err(|e| ClientError::Protocol(format!("connection broken mid-response: {e}")))?;
    } else {
        raw.truncate(body_start + content_length);
    }
    // `raw` may have reallocated since the head was validated; re-slice it.
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| ClientError::Protocol("non-UTF-8 response head".into()))?;
    Ok((assemble_response(head, &raw[body_start..])?, keep_alive))
}

/// Builds a [`ClientResponse`] from an already-split head and body — the
/// single place status lines and NDJSON bodies are parsed, shared by the
/// framed reader above and [`parse_response`].
fn assemble_response(head: &str, body: &[u8]) -> Result<ClientResponse, ClientError> {
    let status_line = head
        .lines()
        .next()
        .ok_or_else(|| ClientError::Protocol("empty response".into()))?;
    // `HTTP/1.1 200 OK`
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
    let retry_after = head.lines().skip(1).find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case("retry-after")
            .then(|| value.trim().parse().ok())
            .flatten()
    });
    let body = std::str::from_utf8(body)
        .map_err(|_| ClientError::Protocol("non-UTF-8 response body".into()))?;
    let lines = body
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_string)
        .collect();
    Ok(ClientResponse {
        status,
        lines,
        retry_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parses a complete raw response buffer (head terminator included)
    /// via [`assemble_response`].
    fn parse_response(raw: &[u8]) -> Result<ClientResponse, ClientError> {
        let header_end = raw
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .ok_or_else(|| ClientError::Protocol("response without header terminator".into()))?;
        let head = std::str::from_utf8(&raw[..header_end])
            .map_err(|_| ClientError::Protocol("non-UTF-8 response head".into()))?;
        assemble_response(head, &raw[header_end + 4..])
    }

    #[test]
    fn parse_response_splits_status_and_lines() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Type: application/x-ndjson\r\nContent-Length: 20\r\n\r\n{\"error\":\"x\"}\n";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 404);
        assert_eq!(response.lines, vec!["{\"error\":\"x\"}".to_string()]);
        assert!(matches!(
            response.into_result(),
            Err(ClientError::Api { status: 404, .. })
        ));
    }

    #[test]
    fn parse_response_rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    #[test]
    fn unavailability_statuses_surface_typed_with_retry_after() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 3\r\nContent-Length: 46\r\n\r\n{\"error\":\"overloaded\",\"message\":\"queue full\"}\n";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.retry_after, Some(3));
        match response.into_result() {
            Err(ClientError::Unavailable {
                status,
                code,
                retry_after,
                ..
            }) => {
                assert_eq!(status, 429);
                assert_eq!(code, "overloaded");
                assert_eq!(retry_after, Some(Duration::from_secs(3)));
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
        // 503 without a hint is still Unavailable; 404 stays Api.
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 49\r\n\r\n{\"error\":\"store_degraded\",\"message\":\"disk full\"}\n";
        assert!(matches!(
            parse_response(raw).unwrap().into_result(),
            Err(ClientError::Unavailable {
                status: 503,
                retry_after: None,
                ..
            })
        ));
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Length: 40\r\n\r\n{\"error\":\"not_found\",\"message\":\"nope\"}\n";
        assert!(matches!(
            parse_response(raw).unwrap().into_result(),
            Err(ClientError::Api { status: 404, .. })
        ));
    }

    #[test]
    fn retry_policy_backs_off_and_honors_retry_after() {
        let policy = RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(250),
            budget: Duration::from_secs(5),
        };
        for _ in 0..20 {
            // Attempt 0 jitters within [base/2, base].
            let d = policy.delay(0, None);
            assert!(d >= Duration::from_millis(50) && d <= Duration::from_millis(100));
            // Attempt 2 would be 400 ms — clamped to max_delay.
            assert!(policy.delay(2, None) <= Duration::from_millis(250));
            // The server's hint floors the wait, even past max_delay.
            assert_eq!(
                policy.delay(0, Some(Duration::from_secs(2))),
                Duration::from_secs(2)
            );
        }
    }
}
