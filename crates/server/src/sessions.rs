//! Server-side registry of pinned streaming sessions with idle eviction.
//!
//! The engine's [`WorkerPool`](s2g_engine::WorkerPool) owns the actual
//! [`StreamingScorer`](s2g_core::StreamingScorer) state, pinned to one
//! worker shard per session. This table is the serving layer's view of
//! those sessions: it mints collision-free ids, stamps every touch with a
//! monotonic clock, and reaps sessions that have been idle longer than the
//! configured timeout — the mechanism that stops abandoned remote clients
//! from pinning scorer state forever.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use s2g_engine::{AdaptConfig, Engine};

use crate::error::ApiError;

struct SessionEntry {
    model: String,
    query_length: usize,
    last_touch: Instant,
    /// Cumulative `(updates, refits)` last reported by the engine for this
    /// session — the baseline for computing per-push metric deltas.
    adapt_progress: (u64, u64),
}

struct Inner {
    sessions: HashMap<String, SessionEntry>,
    next_id: u64,
}

/// Thread-safe table of open streaming sessions with idle-timeout eviction.
pub struct SessionTable {
    inner: Mutex<Inner>,
    /// `None` disables idle eviction.
    idle_timeout: Option<Duration>,
}

impl SessionTable {
    /// Creates a table evicting sessions idle for longer than
    /// `idle_timeout` (`None` = never evict).
    pub fn new(idle_timeout: Option<Duration>) -> Self {
        SessionTable {
            inner: Mutex::new(Inner {
                sessions: HashMap::new(),
                next_id: 1,
            }),
            idle_timeout,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured idle timeout, if eviction is enabled.
    pub fn idle_timeout(&self) -> Option<Duration> {
        self.idle_timeout
    }

    /// Number of currently open sessions.
    pub fn len(&self) -> usize {
        self.lock().sessions.len()
    }

    /// `true` when no session is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Opens a new session against a registered model: mints an id
    /// (`s-1`, `s-2`, …), opens the pinned engine stream (adaptive when
    /// `adapt` is set), and records the session for idle tracking.
    ///
    /// # Errors
    /// [`ApiError`] with `unknown_model` (404), `query_too_short` (422) or
    /// `invalid_config` (400, bad adapt options) from the engine.
    pub fn create(
        &self,
        engine: &Engine,
        model: &str,
        query_length: usize,
        adapt: Option<AdaptConfig>,
    ) -> Result<String, ApiError> {
        let id = {
            let mut inner = self.lock();
            let id = format!("s-{}", inner.next_id);
            inner.next_id += 1;
            id
        };
        match adapt {
            None => engine.open_stream(id.clone(), model, query_length)?,
            Some(config) => engine.open_adaptive_stream(id.clone(), model, query_length, config)?,
        }
        self.lock().sessions.insert(
            id.clone(),
            SessionEntry {
                model: model.to_string(),
                query_length,
                last_touch: Instant::now(),
                adapt_progress: (0, 0),
            },
        );
        Ok(id)
    }

    /// Folds an adaptive push's cumulative `(updates, refits)` into the
    /// session's progress and returns the `(update, refit)` deltas since
    /// the previous push — what metric counters consume. Unknown ids (a
    /// session racing its own eviction) report zero deltas.
    pub fn record_adapt_progress(&self, id: &str, updates: u64, refits: u64) -> (u64, u64) {
        let mut inner = self.lock();
        let Some(entry) = inner.sessions.get_mut(id) else {
            return (0, 0);
        };
        let (seen_updates, seen_refits) = entry.adapt_progress;
        entry.adapt_progress = (updates, refits);
        (
            updates.saturating_sub(seen_updates),
            refits.saturating_sub(seen_refits),
        )
    }

    /// Marks a session as used right now, evicting it instead when its idle
    /// timeout has already elapsed.
    ///
    /// # Errors
    /// [`ApiError`] `unknown_session` (404) when the id is not open or was
    /// just evicted.
    pub fn touch(&self, engine: &Engine, id: &str) -> Result<(), ApiError> {
        let expired = {
            let mut inner = self.lock();
            let Some(entry) = inner.sessions.get_mut(id) else {
                return Err(unknown_session(id));
            };
            let expired = self
                .idle_timeout
                .is_some_and(|timeout| entry.last_touch.elapsed() > timeout);
            if expired {
                inner.sessions.remove(id);
            } else {
                entry.last_touch = Instant::now();
            }
            expired
        };
        if expired {
            let _ = engine.close_stream(id);
            return Err(unknown_session(id));
        }
        Ok(())
    }

    /// `(model, query_length)` of an open session, without touching it.
    pub fn describe(&self, id: &str) -> Option<(String, usize)> {
        self.lock()
            .sessions
            .get(id)
            .map(|e| (e.model.clone(), e.query_length))
    }

    /// Removes a session from the table (the caller closes the engine
    /// stream). Returns `false` when the id was not open.
    pub fn forget(&self, id: &str) -> bool {
        self.lock().sessions.remove(id).is_some()
    }

    /// Evicts every session idle for longer than the timeout, closing its
    /// engine stream. Returns how many sessions were evicted. No-op when
    /// eviction is disabled.
    pub fn evict_idle(&self, engine: &Engine) -> usize {
        let Some(timeout) = self.idle_timeout else {
            return 0;
        };
        let expired: Vec<String> = {
            let mut inner = self.lock();
            let expired: Vec<String> = inner
                .sessions
                .iter()
                .filter(|(_, e)| e.last_touch.elapsed() > timeout)
                .map(|(id, _)| id.clone())
                .collect();
            for id in &expired {
                inner.sessions.remove(id);
            }
            expired
        };
        engine.close_streams(&expired)
    }
}

fn unknown_session(id: &str) -> ApiError {
    ApiError::new(
        404,
        "unknown_session",
        format!("no open session {id:?} (it may have been evicted)"),
    )
}

impl std::fmt::Debug for SessionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTable")
            .field("open", &self.len())
            .field("idle_timeout", &self.idle_timeout)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2g_core::S2gConfig;
    use s2g_engine::EngineConfig;
    use s2g_timeseries::TimeSeries;

    fn engine_with_model() -> Engine {
        let engine = Engine::new(EngineConfig::default().with_workers(2));
        let series = TimeSeries::from(
            (0..3000)
                .map(|i| (std::f64::consts::TAU * i as f64 / 80.0).sin())
                .collect::<Vec<f64>>(),
        );
        engine
            .fit_model("base", &series, &S2gConfig::new(40))
            .unwrap();
        engine
    }

    #[test]
    fn create_touch_forget_lifecycle() {
        let engine = engine_with_model();
        let table = SessionTable::new(None);
        let id = table.create(&engine, "base", 160, None).unwrap();
        assert_eq!(id, "s-1");
        assert_eq!(table.describe(&id), Some(("base".to_string(), 160)));
        table.touch(&engine, &id).unwrap();
        assert!(engine.push_stream(&id, &[0.0, 0.1]).is_ok());
        assert!(table.forget(&id));
        assert!(!table.forget(&id));
        assert!(table.touch(&engine, &id).is_err());
        assert!(table.create(&engine, "ghost", 160, None).is_err());
        assert_eq!(table.len(), 0);
    }

    #[test]
    fn idle_sessions_are_evicted() {
        let engine = engine_with_model();
        let table = SessionTable::new(Some(Duration::from_millis(30)));
        let id = table.create(&engine, "base", 160, None).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(table.evict_idle(&engine), 1);
        assert!(table.is_empty());
        // The engine stream was closed by the eviction.
        assert!(engine.push_stream(&id, &[0.0]).is_err());
        // Lazy path: an expired session dies on touch too.
        let id2 = table.create(&engine, "base", 160, None).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        let err = table.touch(&engine, &id2).unwrap_err();
        assert_eq!(err.code, "unknown_session");
        assert!(engine.push_stream(&id2, &[0.0]).is_err());
    }

    #[test]
    fn eviction_disabled_keeps_sessions() {
        let engine = engine_with_model();
        let table = SessionTable::new(None);
        let id = table.create(&engine, "base", 160, None).unwrap();
        assert_eq!(table.evict_idle(&engine), 0);
        table.touch(&engine, &id).unwrap();
    }
}
