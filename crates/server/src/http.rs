//! Minimal HTTP/1.1 subset: request parsing and response writing.
//!
//! The server speaks just enough HTTP to be driven by any stock HTTP client
//! (`curl` included) while staying dependency-free:
//!
//! * request line `METHOD SP /path[?query] SP HTTP/1.1`, CRLF line endings;
//! * headers until an empty line; `Content-Length` and `Connection` are
//!   interpreted, the rest are skipped;
//! * bodies require an explicit `Content-Length` (no chunked encoding);
//! * connections are **persistent** by default for HTTP/1.1
//!   (`Connection: close` opts out) and close by default for HTTP/1.0
//!   (`Connection: keep-alive` opts in). Error responses (status ≥ 400)
//!   always close. The response's `Connection` header states what the
//!   server actually did.
//!
//! Hard limits protect the server from hostile or broken peers: an
//! over-long request line or header section is rejected with `400`, a body
//! larger than the configured cap with `413` — *before* the body is read
//! into memory. See `docs/PROTOCOL.md` for the full wire contract.

use std::io::{BufRead, Write};

/// Maximum accepted request-line length in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Maximum accepted size of one header line in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Maximum accepted number of headers.
pub const MAX_HEADERS: usize = 64;

/// The request methods the server understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `PUT`
    Put,
    /// `POST`
    Post,
    /// `DELETE`
    Delete,
}

impl Method {
    fn from_token(token: &str) -> Option<Method> {
        match token {
            "GET" => Some(Method::Get),
            "PUT" => Some(Method::Put),
            "POST" => Some(Method::Post),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Put => "PUT",
            Method::Post => "POST",
            Method::Delete => "DELETE",
        })
    }
}

/// A parsed request: method, path split into segments, query pairs, body.
#[derive(Debug)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The raw path as sent (before the `?`), e.g. `/models/turbine`.
    pub path: String,
    /// Path split on `/` with empty segments dropped,
    /// e.g. `["models", "turbine"]`.
    pub segments: Vec<String>,
    /// `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the peer asked to keep the connection open after the
    /// response: HTTP/1.1 unless `Connection: close`, HTTP/1.0 only with
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
    /// Request deadline budget from the `X-S2g-Deadline-Ms` header, in
    /// milliseconds from arrival. Work still queued when the budget runs
    /// out is answered `503 deadline_exceeded` without executing.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// First value of a query parameter, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    /// [`ParseError::Malformed`] when the body is not valid UTF-8.
    pub fn body_text(&self) -> Result<&str, ParseError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ParseError::Malformed("request body is not valid UTF-8"))
    }
}

/// Why a request could not be parsed.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed the connection before sending a request line.
    /// Not an error worth responding to (e.g. a health probe connecting
    /// and hanging up); the connection is simply dropped.
    ConnectionClosed,
    /// The request violates the accepted HTTP subset; the message says how.
    Malformed(&'static str),
    /// The method token is not one of GET/PUT/POST/DELETE.
    UnknownMethod,
    /// The declared `Content-Length` exceeds the configured cap.
    BodyTooLarge {
        /// Declared body size in bytes.
        declared: usize,
        /// Configured maximum body size in bytes.
        limit: usize,
    },
    /// The underlying socket failed mid-request.
    Io(std::io::ErrorKind),
}

/// Reads and parses one request from a buffered stream.
///
/// The reader is taken as [`BufRead`] (not wrapped internally) so that a
/// **persistent connection can keep one buffer across requests**: any
/// bytes of a pipelined next request that read-ahead pulls in survive in
/// the caller's `BufReader` instead of being dropped with a throwaway one,
/// which would desynchronise the connection.
///
/// `max_body_bytes` caps the accepted `Content-Length`; a larger declared
/// body is rejected as [`ParseError::BodyTooLarge`] without reading it.
///
/// # Example
///
/// ```
/// use s2g_server::http::{read_request, Method};
///
/// let raw: &[u8] = b"PUT /models/pump-7?pattern_length=50 HTTP/1.1\r\n\
///                    Content-Length: 4\r\n\r\n1\n2\n";
/// let request = read_request(raw, 1024).unwrap();
/// assert_eq!(request.method, Method::Put);
/// assert_eq!(request.segments, vec!["models", "pump-7"]);
/// assert_eq!(request.query_param("pattern_length"), Some("50"));
/// assert_eq!(request.body_text().unwrap(), "1\n2\n");
/// ```
///
/// # Errors
/// [`ParseError`] describing the first violation encountered.
pub fn read_request<R: BufRead>(
    mut reader: R,
    max_body_bytes: usize,
) -> Result<Request, ParseError> {
    let request_line = read_crlf_line(&mut reader, MAX_REQUEST_LINE)?;
    if request_line.is_empty() {
        return Err(ParseError::ConnectionClosed);
    }
    let mut parts = request_line.split(' ');
    let (Some(method_token), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Malformed(
            "request line must be `METHOD SP TARGET SP VERSION`",
        ));
    };
    let method = Method::from_token(method_token).ok_or(ParseError::UnknownMethod)?;
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Malformed("request target must start with '/'"));
    }

    // Headers: Content-Length and Connection are interpreted, the rest are
    // skipped. Persistence defaults follow the HTTP version: 1.1 keeps the
    // connection unless told otherwise, 1.0 closes unless told otherwise.
    let mut content_length: usize = 0;
    let mut keep_alive = version == "HTTP/1.1";
    let mut deadline_ms: Option<u64> = None;
    for _ in 0..MAX_HEADERS {
        let line = read_crlf_line(&mut reader, MAX_HEADER_LINE)?;
        if line.is_empty() {
            let body = read_body(&mut reader, content_length, max_body_bytes)?;
            return Ok(build_request(method, target, body, keep_alive, deadline_ms));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed("header line without ':'"));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ParseError::Malformed("unparseable Content-Length"))?;
        } else if name.eq_ignore_ascii_case("x-s2g-deadline-ms") {
            deadline_ms = Some(
                value
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::Malformed("unparseable X-S2g-Deadline-Ms"))?,
            );
        } else if name.eq_ignore_ascii_case("connection") {
            // Token list; the tokens we honor are `close` and `keep-alive`.
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    Err(ParseError::Malformed("too many headers"))
}

fn read_body<R: BufRead>(
    reader: &mut R,
    content_length: usize,
    max_body_bytes: usize,
) -> Result<Vec<u8>, ParseError> {
    if content_length > max_body_bytes {
        return Err(ParseError::BodyTooLarge {
            declared: content_length,
            limit: max_body_bytes,
        });
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| ParseError::Io(e.kind()))?;
    Ok(body)
}

fn build_request(
    method: Method,
    target: &str,
    body: Vec<u8>,
    keep_alive: bool,
    deadline_ms: Option<u64>,
) -> Request {
    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let segments = path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let query = query_text
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    Request {
        method,
        path: path.to_string(),
        segments,
        query,
        body,
        keep_alive,
        deadline_ms,
    }
}

/// Reads one CRLF-terminated line (the CRLF is stripped; a bare LF is
/// tolerated). Returns an empty string for a blank line *or* a cleanly
/// closed stream — callers distinguish via context.
fn read_crlf_line<R: BufRead>(reader: &mut R, max_len: usize) -> Result<String, ParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => break, // EOF
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > max_len {
                    return Err(ParseError::Malformed("line too long"));
                }
            }
            Err(e) => return Err(ParseError::Io(e.kind())),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ParseError::Malformed("non-UTF-8 header bytes"))
}

/// An HTTP response about to be written: status code plus a body — NDJSON
/// lines for the API endpoints, plain text for `/metrics`.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code (200, 400, 404, …).
    pub status: u16,
    /// Body lines; each is one JSON document (or one plain-text line),
    /// joined with `\n`.
    pub lines: Vec<String>,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// When set, emitted as an `X-S2g-Trace` response header — the id to
    /// feed `GET /debug/trace/{id}` for the request's span tree.
    pub trace_id: Option<String>,
    /// When set, emitted as a `Retry-After: <seconds>` response header —
    /// load-shed responses (`429`) tell the client when to come back.
    pub retry_after: Option<u64>,
}

/// Content type of the NDJSON API responses.
pub const CONTENT_TYPE_NDJSON: &str = "application/x-ndjson";
/// Content type of plain-text responses (`/metrics`).
pub const CONTENT_TYPE_TEXT: &str = "text/plain; charset=utf-8";

impl Response {
    /// A `200 OK` response with the given NDJSON lines.
    pub fn ok(lines: Vec<String>) -> Response {
        Response {
            status: 200,
            lines,
            content_type: CONTENT_TYPE_NDJSON,
            trace_id: None,
            retry_after: None,
        }
    }

    /// A `200 OK` plain-text response (one string per line).
    pub fn plain_text(lines: Vec<String>) -> Response {
        Response {
            status: 200,
            lines,
            content_type: CONTENT_TYPE_TEXT,
            trace_id: None,
            retry_after: None,
        }
    }

    /// The canonical reason phrase for the status codes the server emits.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            429 => "Too Many Requests",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response head + body with `Connection: close`
    /// (the non-persistent form; see [`Response::write_to_conn`]).
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn write_to<W: Write>(&self, w: W) -> std::io::Result<()> {
        self.write_to_conn(w, false)
    }

    /// Serializes the response head + body, advertising in the
    /// `Connection` header whether the server keeps the connection open
    /// (`keep_alive`) for the next request on the same socket.
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn write_to_conn<W: Write>(&self, mut w: W, keep_alive: bool) -> std::io::Result<()> {
        let body = self.lines.join("\n");
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let body_len = if body.is_empty() { 0 } else { body.len() + 1 };
        let trace_header = match &self.trace_id {
            Some(id) => format!("X-S2g-Trace: {id}\r\n"),
            None => String::new(),
        };
        let retry_header = match self.retry_after {
            Some(secs) => format!("Retry-After: {secs}\r\n"),
            None => String::new(),
        };
        // Head and body go out in a single write: on a persistent
        // connection a trailing small segment would otherwise sit in the
        // kernel behind Nagle's algorithm until the peer's delayed ACK
        // (tens of milliseconds) — the old close-per-request design never
        // noticed because the FIN flushed it.
        let mut wire = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {connection}\r\n{trace_header}{retry_header}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            body_len,
        )
        .into_bytes();
        wire.extend_from_slice(body.as_bytes());
        if !body.is_empty() {
            wire.push(b'\n');
        }
        w.write_all(&wire)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        read_request(raw, 1024)
    }

    #[test]
    fn parses_full_request() {
        let raw = b"POST /models/m-1/score?query_length=150&top_k=3 HTTP/1.1\r\nHost: x\r\nContent-Length: 8\r\n\r\n1\n2\n3.5\n";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.path, "/models/m-1/score");
        assert_eq!(req.segments, vec!["models", "m-1", "score"]);
        assert_eq!(req.query_param("query_length"), Some("150"));
        assert_eq!(req.query_param("top_k"), Some("3"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.body_text().unwrap(), "1\n2\n3.5\n");
    }

    #[test]
    fn parses_bodyless_get() {
        let req = parse(b"GET /models HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert!(req.body.is_empty());
        assert!(req.query.is_empty());
    }

    #[test]
    fn connection_persistence_follows_version_and_header() {
        // HTTP/1.1 defaults to keep-alive…
        assert!(parse(b"GET /models HTTP/1.1\r\n\r\n").unwrap().keep_alive);
        // …unless the peer opts out.
        assert!(
            !parse(b"GET /models HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        // HTTP/1.0 defaults to close…
        assert!(!parse(b"GET /models HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        // …unless the peer opts in (any case, token lists allowed).
        assert!(
            parse(b"GET /models HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        assert!(
            !parse(b"GET /models HTTP/1.1\r\nConnection: foo, CLOSE\r\n\r\n")
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn response_advertises_keep_alive() {
        let mut out = Vec::new();
        Response::ok(vec!["{}".to_string()])
            .write_to_conn(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert!(matches!(
            parse(b"GARBAGE\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(parse(b""), Err(ParseError::ConnectionClosed)));
        assert!(matches!(
            parse(b"BREW /models HTTP/1.1\r\n\r\n"),
            Err(ParseError::UnknownMethod)
        ));
        assert!(matches!(
            parse(b"GET /models HTTP/0.9\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET models HTTP/1.1\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /a b /c HTTP/1.1\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_bodies_by_declared_length() {
        let raw = b"PUT /models/big HTTP/1.1\r\nContent-Length: 2048\r\n\r\n";
        assert!(matches!(
            parse(raw),
            Err(ParseError::BodyTooLarge {
                declared: 2048,
                limit: 1024
            })
        ));
    }

    #[test]
    fn rejects_bad_content_length_and_truncated_bodies() {
        assert!(matches!(
            parse(b"PUT /m HTTP/1.1\r\nContent-Length: abc\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"PUT /m HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ParseError::Io(_))
        ));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::ok(vec!["{\"a\":1}".to_string()])
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 8\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"a\":1}\n"));
    }
}
