//! Serving metrics: cheap process-wide counters exported as the plain-text
//! `GET /metrics` endpoint.
//!
//! The format is the Prometheus text exposition subset — `name{labels} value`
//! lines — so any scraper (or `grep`) can consume it. Counters are
//! monotonic over the life of the process; gauges (sessions, residency)
//! are sampled at scrape time from the live engine. Everything is either
//! an atomic or a small mutex-guarded map touched once per request, so
//! recording costs nanoseconds on the serving path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Process-wide serving counters (one instance per [`crate::Server`]).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests by `(route pattern, status)` — route patterns are
    /// normalised (`PUT /models/{name}`), not raw paths, so cardinality
    /// stays bounded.
    requests: Mutex<BTreeMap<(&'static str, u16), u64>>,
    /// Successful model fits (`PUT /models/{name}`).
    fits: AtomicU64,
    /// Series scored by `POST /models/{name}/score` (one per input line).
    scored_series: AtomicU64,
    /// Streaming sessions opened.
    sessions_opened: AtomicU64,
    /// Accepted decayed edge updates across all adaptive sessions.
    adapt_updates: AtomicU64,
    /// Refits completed across all adaptive sessions.
    adapt_refits: AtomicU64,
    /// Adapted snapshots published (registered + persisted).
    adapt_published: AtomicU64,
}

impl Metrics {
    /// Records one served request under its normalised route pattern.
    pub fn record_request(&self, route: &'static str, status: u16) {
        let mut requests = self.requests.lock().unwrap_or_else(|e| e.into_inner());
        *requests.entry((route, status)).or_insert(0) += 1;
    }

    /// Records one successful fit.
    pub fn record_fit(&self) {
        self.fits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` scored series.
    pub fn record_scores(&self, n: u64) {
        self.scored_series.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one opened streaming session.
    pub fn record_session_opened(&self) {
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one adaptive push's deltas into the adaptation counters.
    pub fn record_adaptation(&self, update_delta: u64, refit_delta: u64, published: bool) {
        self.adapt_updates
            .fetch_add(update_delta, Ordering::Relaxed);
        self.adapt_refits.fetch_add(refit_delta, Ordering::Relaxed);
        if published {
            self.adapt_published.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Renders the exposition: counters from this struct plus the gauges
    /// sampled by the caller.
    pub fn render(&self, gauges: &[(&str, u64)]) -> Vec<String> {
        let mut lines = Vec::new();
        {
            let requests = self.requests.lock().unwrap_or_else(|e| e.into_inner());
            for (&(route, status), &count) in requests.iter() {
                lines.push(format!(
                    "s2g_requests_total{{route=\"{route}\",status=\"{status}\"}} {count}"
                ));
            }
        }
        for (name, value) in [
            ("s2g_fits_total", self.fits.load(Ordering::Relaxed)),
            (
                "s2g_scored_series_total",
                self.scored_series.load(Ordering::Relaxed),
            ),
            (
                "s2g_sessions_opened_total",
                self.sessions_opened.load(Ordering::Relaxed),
            ),
            (
                "s2g_adapt_updates_total",
                self.adapt_updates.load(Ordering::Relaxed),
            ),
            (
                "s2g_adapt_refits_total",
                self.adapt_refits.load(Ordering::Relaxed),
            ),
            (
                "s2g_adapt_published_total",
                self.adapt_published.load(Ordering::Relaxed),
            ),
        ] {
            lines.push(format!("{name} {value}"));
        }
        for (name, value) in gauges {
            lines.push(format!("{name} {value}"));
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders_counters_and_gauges() {
        let metrics = Metrics::default();
        metrics.record_request("GET /healthz", 200);
        metrics.record_request("GET /healthz", 200);
        metrics.record_request("PUT /models/{name}", 422);
        metrics.record_fit();
        metrics.record_scores(3);
        metrics.record_session_opened();
        metrics.record_adaptation(10, 1, true);
        metrics.record_adaptation(5, 0, false);

        let lines = metrics.render(&[("s2g_models_registered", 2)]);
        let text = lines.join("\n");
        assert!(text.contains("s2g_requests_total{route=\"GET /healthz\",status=\"200\"} 2"));
        assert!(text.contains("s2g_requests_total{route=\"PUT /models/{name}\",status=\"422\"} 1"));
        assert!(text.contains("s2g_fits_total 1"));
        assert!(text.contains("s2g_scored_series_total 3"));
        assert!(text.contains("s2g_sessions_opened_total 1"));
        assert!(text.contains("s2g_adapt_updates_total 15"));
        assert!(text.contains("s2g_adapt_refits_total 1"));
        assert!(text.contains("s2g_adapt_published_total 1"));
        assert!(text.contains("s2g_models_registered 2"));
    }
}
