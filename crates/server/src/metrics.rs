//! Serving metrics: cheap process-wide counters exported as the plain-text
//! `GET /metrics` endpoint.
//!
//! The format is the Prometheus text exposition subset — `name{labels} value`
//! lines — so any scraper (or `grep`) can consume it. Counters are
//! monotonic over the life of the process; gauges (sessions, residency)
//! are sampled at scrape time from the live engine.
//!
//! Request counting is **wait-free**: the route patterns and status codes
//! the server can produce are both finite and known at compile time, so
//! the `(route, status)` counters live in a pre-registered flat
//! `AtomicU64` grid — recording is two bounded linear scans over
//! `&'static` tables plus one relaxed `fetch_add`, no lock, no allocation,
//! no map rebalancing on the serving path. Unknown routes and statuses
//! fall into catch-all cells instead of growing the grid, so cardinality
//! stays bounded no matter what traffic arrives.

use std::sync::atomic::{AtomicU64, Ordering};

/// Every normalised route pattern the router can produce, including the
/// synthetic ones for unparseable and unroutable requests. The final
/// `(other)` entry doubles as the catch-all cell for patterns this table
/// does not know (which would indicate route-table drift — visible in the
/// exposition rather than silently merged).
pub const ROUTE_PATTERNS: &[&str] = &[
    "GET /healthz",
    "GET /metrics",
    "GET /metrics/json",
    "GET /metrics/history",
    "GET /metrics/delta",
    "GET /metrics/journal",
    "GET /watch",
    "GET /debug/trace/{id}",
    "GET /debug/slow",
    "POST /debug/sleep",
    "POST /debug/panic",
    "POST /debug/failpoint",
    "GET /debug/failpoint",
    "GET /models",
    "PUT /models/{name}",
    "GET /models/{name}",
    "DELETE /models/{name}",
    "POST /models/{name}/score",
    "POST /sessions",
    "POST /sessions/{id}/push",
    "DELETE /sessions/{id}",
    "POST /admin/shutdown",
    "(method_not_allowed)",
    "(unparsed)",
    "(other)",
];

/// Every status code the server emits (see [`crate::http::Response::reason`]);
/// the trailing `0` cell catches anything outside the set and renders as
/// `status="other"`.
const STATUS_CODES: &[u16] = &[200, 400, 404, 405, 409, 413, 422, 429, 500, 503, 0];

fn route_slot(route: &str) -> usize {
    ROUTE_PATTERNS
        .iter()
        .position(|&r| r == route)
        .unwrap_or(ROUTE_PATTERNS.len() - 1)
}

fn status_slot(status: u16) -> usize {
    STATUS_CODES
        .iter()
        .position(|&s| s == status)
        .unwrap_or(STATUS_CODES.len() - 1)
}

/// Process-wide serving counters (one instance per [`crate::Server`]).
#[derive(Debug)]
pub struct Metrics {
    /// Requests by `(route pattern, status)`, flattened row-major over
    /// [`ROUTE_PATTERNS`] × [`STATUS_CODES`]. Route patterns are
    /// normalised (`PUT /models/{name}`), not raw paths, so cardinality
    /// stays bounded.
    requests: Vec<AtomicU64>,
    /// Successful model fits (`PUT /models/{name}`).
    fits: AtomicU64,
    /// Series scored by `POST /models/{name}/score` (one per input line).
    scored_series: AtomicU64,
    /// Streaming sessions opened.
    sessions_opened: AtomicU64,
    /// Accepted decayed edge updates across all adaptive sessions.
    adapt_updates: AtomicU64,
    /// Refits completed across all adaptive sessions.
    adapt_refits: AtomicU64,
    /// Adapted snapshots published (registered + persisted).
    adapt_published: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: (0..ROUTE_PATTERNS.len() * STATUS_CODES.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            fits: AtomicU64::new(0),
            scored_series: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            adapt_updates: AtomicU64::new(0),
            adapt_refits: AtomicU64::new(0),
            adapt_published: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Records one served request under its normalised route pattern —
    /// a pure atomic increment into the pre-registered grid.
    pub fn record_request(&self, route: &'static str, status: u16) {
        let slot = route_slot(route) * STATUS_CODES.len() + status_slot(status);
        self.requests[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one successful fit.
    pub fn record_fit(&self) {
        self.fits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` scored series.
    pub fn record_scores(&self, n: u64) {
        self.scored_series.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one opened streaming session.
    pub fn record_session_opened(&self) {
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one adaptive push's deltas into the adaptation counters.
    pub fn record_adaptation(&self, update_delta: u64, refit_delta: u64, published: bool) {
        self.adapt_updates
            .fetch_add(update_delta, Ordering::Relaxed);
        self.adapt_refits.fetch_add(refit_delta, Ordering::Relaxed);
        if published {
            self.adapt_published.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The fixed counter-series naming the flight recorder retains: one
    /// `s2g_requests_total{route}` per pre-registered pattern (summed
    /// over statuses), one global `s2g_request_errors_total`, then the
    /// scalar counters. Positions align with [`Metrics::counter_values`].
    pub fn counter_schema() -> Vec<String> {
        let mut names: Vec<String> = ROUTE_PATTERNS
            .iter()
            .map(|route| format!("s2g_requests_total{{route=\"{route}\"}}"))
            .collect();
        names.push("s2g_request_errors_total".to_string());
        for name in [
            "s2g_fits_total",
            "s2g_scored_series_total",
            "s2g_sessions_opened_total",
            "s2g_adapt_updates_total",
            "s2g_adapt_refits_total",
            "s2g_adapt_published_total",
        ] {
            names.push(name.to_string());
        }
        names
    }

    /// Live counter values, positionally aligned to
    /// [`Metrics::counter_schema`].
    pub fn counter_values(&self) -> Vec<u64> {
        let mut errors = 0u64;
        let mut values: Vec<u64> = (0..ROUTE_PATTERNS.len())
            .map(|r| {
                let mut total = 0u64;
                for (s, &status) in STATUS_CODES.iter().enumerate() {
                    let count = self.requests[r * STATUS_CODES.len() + s].load(Ordering::Relaxed);
                    total += count;
                    // The catch-all status cell (0) holds unknown codes —
                    // counted as errors to be safe.
                    if status >= 400 || status == 0 {
                        errors += count;
                    }
                }
                total
            })
            .collect();
        values.push(errors);
        for counter in [
            &self.fits,
            &self.scored_series,
            &self.sessions_opened,
            &self.adapt_updates,
            &self.adapt_refits,
            &self.adapt_published,
        ] {
            values.push(counter.load(Ordering::Relaxed));
        }
        values
    }

    /// Renders the exposition: counters from this struct plus the gauges
    /// sampled by the caller. Only `(route, status)` cells that counted
    /// something are emitted, so the grid's size never bloats the scrape.
    pub fn render(&self, gauges: &[(&str, u64)]) -> Vec<String> {
        let mut lines = Vec::new();
        for (r, &route) in ROUTE_PATTERNS.iter().enumerate() {
            for (s, &status) in STATUS_CODES.iter().enumerate() {
                let count = self.requests[r * STATUS_CODES.len() + s].load(Ordering::Relaxed);
                if count == 0 {
                    continue;
                }
                let status_label = if status == 0 {
                    "other".to_string()
                } else {
                    status.to_string()
                };
                lines.push(format!(
                    "s2g_requests_total{{route=\"{route}\",status=\"{status_label}\"}} {count}"
                ));
            }
        }
        for (name, value) in [
            ("s2g_fits_total", self.fits.load(Ordering::Relaxed)),
            (
                "s2g_scored_series_total",
                self.scored_series.load(Ordering::Relaxed),
            ),
            (
                "s2g_sessions_opened_total",
                self.sessions_opened.load(Ordering::Relaxed),
            ),
            (
                "s2g_adapt_updates_total",
                self.adapt_updates.load(Ordering::Relaxed),
            ),
            (
                "s2g_adapt_refits_total",
                self.adapt_refits.load(Ordering::Relaxed),
            ),
            (
                "s2g_adapt_published_total",
                self.adapt_published.load(Ordering::Relaxed),
            ),
        ] {
            lines.push(format!("{name} {value}"));
        }
        for (name, value) in gauges {
            lines.push(format!("{name} {value}"));
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders_counters_and_gauges() {
        let metrics = Metrics::default();
        metrics.record_request("GET /healthz", 200);
        metrics.record_request("GET /healthz", 200);
        metrics.record_request("PUT /models/{name}", 422);
        metrics.record_fit();
        metrics.record_scores(3);
        metrics.record_session_opened();
        metrics.record_adaptation(10, 1, true);
        metrics.record_adaptation(5, 0, false);

        let lines = metrics.render(&[("s2g_models_registered", 2)]);
        let text = lines.join("\n");
        assert!(text.contains("s2g_requests_total{route=\"GET /healthz\",status=\"200\"} 2"));
        assert!(text.contains("s2g_requests_total{route=\"PUT /models/{name}\",status=\"422\"} 1"));
        assert!(text.contains("s2g_fits_total 1"));
        assert!(text.contains("s2g_scored_series_total 3"));
        assert!(text.contains("s2g_sessions_opened_total 1"));
        assert!(text.contains("s2g_adapt_updates_total 15"));
        assert!(text.contains("s2g_adapt_refits_total 1"));
        assert!(text.contains("s2g_adapt_published_total 1"));
        assert!(text.contains("s2g_models_registered 2"));
    }

    #[test]
    fn unknown_routes_and_statuses_fall_into_catch_all_cells() {
        let metrics = Metrics::default();
        metrics.record_request("GET /made-up", 200);
        metrics.record_request("GET /healthz", 299);
        let text = metrics.render(&[]).join("\n");
        assert!(text.contains("s2g_requests_total{route=\"(other)\",status=\"200\"} 1"));
        assert!(text.contains("s2g_requests_total{route=\"GET /healthz\",status=\"other\"} 1"));
    }

    #[test]
    fn counter_schema_and_values_stay_aligned() {
        let metrics = Metrics::default();
        let schema = Metrics::counter_schema();
        assert_eq!(schema.len(), metrics.counter_values().len());
        metrics.record_request("GET /healthz", 200);
        metrics.record_request("GET /healthz", 200);
        metrics.record_request("PUT /models/{name}", 422);
        metrics.record_fit();
        let values = metrics.counter_values();
        let value_of = |name: &str| -> u64 {
            let i = schema.iter().position(|n| n == name).expect(name);
            values[i]
        };
        assert_eq!(value_of("s2g_requests_total{route=\"GET /healthz\"}"), 2);
        assert_eq!(
            value_of("s2g_requests_total{route=\"PUT /models/{name}\"}"),
            1
        );
        assert_eq!(value_of("s2g_request_errors_total"), 1);
        assert_eq!(value_of("s2g_fits_total"), 1);
    }

    #[test]
    fn every_emitted_status_is_pre_registered() {
        // The grid must know every status `ApiError`/handlers can emit;
        // a new status code should be added to STATUS_CODES, not silently
        // merged into the catch-all.
        for status in [200, 400, 404, 405, 409, 413, 422, 429, 500, 503] {
            assert_ne!(status_slot(status), STATUS_CODES.len() - 1, "{status}");
        }
    }
}
