//! Flight-recorder integration: what the sampler freezes each tick, and
//! how retained history is rendered on the wire.
//!
//! The recorder itself (ring, compact histograms, windowed-delta math)
//! lives in `s2g_obs::recorder`; this module binds it to the server's
//! concrete instrument set. The schema is frozen once at bind time —
//! counters from the [`Metrics`] grid, gauges from [`sampled_gauges`],
//! one histogram per route family entry plus the stage instruments — so
//! every retained sample stays positionally aligned for the whole
//! process life.

use s2g_obs::recorder::{CompactHistogram, Recorder, Sample, SeriesSchema};

use crate::json::Json;
use crate::metrics::Metrics;
use crate::server::{Shared, EXTERNAL_ROUTES, INTERNAL_ROUTES};

/// Gauge order of both the schema and [`sampled_gauges`] — one list so
/// the two can never drift apart.
const GAUGE_NAMES: &[&str] = &[
    "s2g_models_registered",
    "s2g_models_stored",
    "s2g_store_resident_bytes",
    "s2g_store_residency_evictions_total",
    "s2g_sessions_open",
    "s2g_workers",
    "s2g_pool_queue_depth_total",
    "s2g_pool_tasks_pending",
    "s2g_store_degraded",
    "s2g_accept_slots",
    "s2g_accept_slots_in_use",
    "s2g_accept_waiting",
    "s2g_uptime_seconds",
];

/// Stage-instrument order in the schema (mirrors `Obs::stages`).
const STAGE_NAMES: &[&str] = &[
    "s2g_fit_duration_ns",
    "s2g_score_duration_ns",
    "s2g_pool_queue_wait_ns",
    "s2g_pool_execute_ns",
    "s2g_store_fault_ns",
    "s2g_store_write_ns",
    "s2g_adapt_push_ns",
];

/// Point-in-time gauges, in [`GAUGE_NAMES`] order — shared by the
/// `/metrics` exposition, `/metrics/json` and the sampler.
pub(crate) fn sampled_gauges(shared: &Shared) -> Vec<(&'static str, u64)> {
    let storage = shared.engine.storage();
    let (slots_in_use, accept_waiting) = shared.slots.occupancy();
    let queue_depth_total: u64 = shared.engine.queue_depths().iter().sum();
    let values = vec![
        (
            "s2g_models_registered",
            shared.engine.registry().len() as u64,
        ),
        (
            "s2g_models_stored",
            storage.map_or(0, |s| s.stored()) as u64,
        ),
        (
            "s2g_store_resident_bytes",
            storage.map_or(0, |s| s.resident_bytes()),
        ),
        (
            "s2g_store_residency_evictions_total",
            storage.map_or(0, |s| s.residency_evictions()),
        ),
        ("s2g_sessions_open", shared.sessions.len() as u64),
        ("s2g_workers", shared.engine.workers() as u64),
        ("s2g_pool_queue_depth_total", queue_depth_total),
        ("s2g_pool_tasks_pending", shared.engine.pending_tasks()),
        (
            // 1 while the store's disk is refusing writes — an anomaly the
            // self-watch history makes legible after the fact.
            "s2g_store_degraded",
            storage.map_or(0, |s| {
                u64::from(s.mode() == s2g_engine::StoreMode::Degraded)
            }),
        ),
        ("s2g_accept_slots", shared.slots.capacity as u64),
        ("s2g_accept_slots_in_use", slots_in_use as u64),
        ("s2g_accept_waiting", accept_waiting as u64),
        ("s2g_uptime_seconds", shared.started.elapsed().as_secs()),
    ];
    debug_assert!(values
        .iter()
        .map(|(n, _)| *n)
        .eq(GAUGE_NAMES.iter().copied()));
    values
}

/// Histogram-series name of one route family entry.
fn route_series_name(family: &str, route: &str) -> String {
    format!("{family}{{route=\"{route}\"}}")
}

/// The frozen naming of everything a [`Sample`] retains.
pub(crate) fn build_schema() -> SeriesSchema {
    let mut histograms: Vec<String> = EXTERNAL_ROUTES
        .iter()
        .map(|route| route_series_name("s2g_request_duration_ns", route))
        .collect();
    histograms.extend(
        INTERNAL_ROUTES
            .iter()
            .map(|route| route_series_name("s2g_internal_request_duration_ns", route)),
    );
    histograms.extend(STAGE_NAMES.iter().map(|s| s.to_string()));
    SeriesSchema {
        counters: Metrics::counter_schema(),
        gauges: GAUGE_NAMES.iter().map(|s| s.to_string()).collect(),
        histograms,
    }
}

/// Freezes every live instrument into one schema-aligned [`Sample`].
pub(crate) fn collect_sample(shared: &Shared) -> Sample {
    let mut histograms: Vec<CompactHistogram> = EXTERNAL_ROUTES
        .iter()
        .map(|route| CompactHistogram::from_snapshot(&shared.obs.requests.get(route).snapshot()))
        .collect();
    histograms.extend(
        INTERNAL_ROUTES.iter().map(|route| {
            CompactHistogram::from_snapshot(&shared.obs.internal.get(route).snapshot())
        }),
    );
    histograms.extend(
        shared
            .obs
            .stages()
            .iter()
            .map(|(_, hist)| CompactHistogram::from_snapshot(&hist.snapshot())),
    );
    Sample {
        t_ns: s2g_obs::clock::now_ns(),
        counters: shared.metrics.counter_values(),
        gauges: sampled_gauges(shared).into_iter().map(|(_, v)| v).collect(),
        histograms,
    }
}

/// Index of the merged-external block in the sample histogram vector:
/// `0..EXTERNAL_ROUTES.len()`.
pub(crate) fn external_range() -> std::ops::Range<usize> {
    0..EXTERNAL_ROUTES.len()
}

/// Index of a stage instrument in the sample histogram vector.
pub(crate) fn stage_index(name: &str) -> Option<usize> {
    STAGE_NAMES
        .iter()
        .position(|&s| s == name)
        .map(|i| EXTERNAL_ROUTES.len() + INTERNAL_ROUTES.len() + i)
}

/// Merges a contiguous range of one sample's histograms (bucketwise add).
fn merge_range(sample: &Sample, range: std::ops::Range<usize>) -> CompactHistogram {
    let mut counts = vec![0u64; s2g_obs::BUCKETS];
    let mut count = 0u64;
    let mut sum = 0u64;
    let mut max = 0u64;
    for hist in &sample.histograms[range] {
        for &(i, n) in &hist.buckets {
            counts[i] += n;
        }
        count += hist.count;
        sum = sum.wrapping_add(hist.sum);
        max = max.max(hist.max);
    }
    CompactHistogram {
        count,
        sum,
        max,
        buckets: counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(i, &n)| (i, n))
            .collect(),
    }
}

/// The windowed histogram of everything external requests recorded
/// between `prev` and `current` — merged across routes, then subtracted.
pub(crate) fn external_delta(prev: &Sample, current: &Sample) -> CompactHistogram {
    merge_range(current, external_range()).delta(&merge_range(prev, external_range()))
}

/// One compact histogram as the summary-object shape `/metrics/json`
/// established (`count`/`sum_ns`/`max_ns`/`mean_ns`/`p50..p99_ns`).
fn compact_json(hist: &CompactHistogram) -> Json {
    Json::obj([
        ("count", Json::from(hist.count as usize)),
        ("sum_ns", Json::from(hist.sum as usize)),
        ("max_ns", Json::from(hist.max as usize)),
        ("mean_ns", Json::from(hist.mean())),
        ("p50_ns", Json::from(hist.quantile(0.5) as usize)),
        ("p95_ns", Json::from(hist.quantile(0.95) as usize)),
        ("p99_ns", Json::from(hist.quantile(0.99) as usize)),
    ])
}

/// `GET /metrics/history?window=&step=`: the retained series, oldest
/// first. Counters and histogram summaries are cumulative at each
/// sample's capture time (`GET /metrics/delta` serves the windowed
/// view); gauges are point-in-time.
pub(crate) fn history_json(recorder: &Recorder, window_secs: u64, step: usize) -> Json {
    let schema = recorder.schema();
    let samples = recorder.window(window_secs.saturating_mul(1_000_000_000), step);
    let series: Vec<Json> = samples
        .iter()
        .map(|sample| {
            Json::obj([
                ("t_ns", Json::from(sample.t_ns as usize)),
                (
                    "counters",
                    Json::Arr(
                        sample
                            .counters
                            .iter()
                            .map(|&v| Json::from(v as usize))
                            .collect(),
                    ),
                ),
                (
                    "gauges",
                    Json::Arr(
                        sample
                            .gauges
                            .iter()
                            .map(|&v| Json::from(v as usize))
                            .collect(),
                    ),
                ),
                (
                    "histograms",
                    Json::Arr(sample.histograms.iter().map(compact_json).collect()),
                ),
            ])
        })
        .collect();
    let names = |list: &[String]| -> Json {
        Json::Arr(list.iter().map(|n| Json::from(n.clone())).collect())
    };
    Json::obj([
        ("interval_ms", Json::from(recorder.interval_ms() as usize)),
        ("retention", Json::from(recorder.retention())),
        ("samples", Json::from(series.len())),
        (
            "schema",
            Json::obj([
                ("counters", names(&schema.counters)),
                ("gauges", names(&schema.gauges)),
                ("histograms", names(&schema.histograms)),
            ]),
        ),
        ("series", Json::Arr(series)),
    ])
}

/// `GET /metrics/delta?window=`: rates and windowed latency over the
/// last `window` seconds of retained samples — counters as
/// `delta`/`per_sec`, histograms as windowed summaries with a `per_sec`
/// arrival rate. `ready` is `false` (and the maps empty) until two
/// samples span the window.
pub(crate) fn delta_json(recorder: &Recorder, window_secs: u64) -> Json {
    let schema = recorder.schema();
    let window_ns = window_secs.saturating_mul(1_000_000_000);
    let Some((first, last)) = recorder.window_ends(window_ns) else {
        return Json::obj([
            ("ready", Json::from(false)),
            ("samples", Json::from(recorder.window(window_ns, 1).len())),
            ("seconds", Json::from(0.0)),
            ("counters", Json::Obj(Vec::new())),
            ("histograms", Json::Obj(Vec::new())),
        ]);
    };
    let seconds = last.t_ns.saturating_sub(first.t_ns) as f64 / 1e9;
    let rate = |delta: u64| -> f64 {
        if seconds > 0.0 {
            delta as f64 / seconds
        } else {
            0.0
        }
    };
    let counters: Vec<(String, Json)> = schema
        .counters
        .iter()
        .zip(last.counters.iter().zip(first.counters.iter()))
        .filter_map(|(name, (&now, &then))| {
            let delta = now.saturating_sub(then);
            (delta > 0).then(|| {
                (
                    name.clone(),
                    Json::obj([
                        ("delta", Json::from(delta as usize)),
                        ("per_sec", Json::from(rate(delta))),
                    ]),
                )
            })
        })
        .collect();
    let histograms: Vec<(String, Json)> = schema
        .histograms
        .iter()
        .zip(last.histograms.iter().zip(first.histograms.iter()))
        .filter_map(|(name, (now, then))| {
            let delta = now.delta(then);
            (delta.count > 0).then(|| {
                let mut summary = compact_json(&delta);
                if let Json::Obj(pairs) = &mut summary {
                    pairs.push(("per_sec".to_string(), Json::from(rate(delta.count))));
                }
                (name.clone(), summary)
            })
        })
        .collect();
    Json::obj([
        ("ready", Json::from(true)),
        ("samples", Json::from(recorder.window(window_ns, 1).len())),
        ("from_t_ns", Json::from(first.t_ns as usize)),
        ("to_t_ns", Json::from(last.t_ns as usize)),
        ("seconds", Json::from(seconds)),
        ("counters", Json::Obj(counters)),
        ("histograms", Json::Obj(histograms)),
    ])
}
