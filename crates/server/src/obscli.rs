//! `s2g obs` — offline forensics over a durable telemetry journal.
//!
//! Reads the segment and postmortem files a journaled server left under
//! `--data-dir/obs/` (no server required — the point is reading the
//! black box *after* the process is gone) and reconstructs what the
//! live endpoints would have told you:
//!
//! * `obs ls` — every retained file: sequence, events, bytes, wall-clock
//!   range, torn-tail flags;
//! * `obs report [--window <secs>]` — the last boot's request rates and
//!   windowed latency percentiles (rebuilt from retained
//!   flight-recorder samples via the strict `checked_delta` machinery),
//!   self-watch transitions, slow/error traces, warn/error log lines,
//!   and any postmortems;
//! * `obs grep` — filter the event stream by route, trace id, level or
//!   kind; `--trace` prints the span tree plus correlated log lines;
//! * `obs export` — the whole journal as JSON lines for `jq` and
//!   friends.
//!
//! Every record consumed here was checksum-verified by the reader;
//! torn tails (a `kill -9` mid-write) are reported, never fatal.

use std::path::PathBuf;

use s2g_engine::cli::{CliError, ParsedArgs};
use s2g_obs::journal::{
    read_dir_all, JournalEvent, LogEvent, SampleEvent, SegmentData, TraceEvent,
};
use s2g_obs::recorder::{CompactHistogram, SeriesSchema};

use crate::json::Json;

/// EPIPE-safe line output: `obs export | head -1` and `obs report | less`
/// are the intended usage, and a closed downstream pipe must end the
/// command quietly (exit 0), not panic mid-`outln!`.
fn emit(args: std::fmt::Arguments<'_>) {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    if out
        .write_fmt(args)
        .and_then(|()| out.write_all(b"\n"))
        .is_err()
    {
        std::process::exit(0);
    }
}

macro_rules! outln {
    ($($t:tt)*) => { emit(format_args!($($t)*)) };
}

/// `s2g obs <ls|report|grep|export> (--data-dir <dir> | --journal-dir <dir>) ...`
///
/// # Errors
/// [`CliError::Usage`] for bad flags, [`CliError::Runtime`] when the
/// journal directory cannot be read.
pub(crate) fn cmd_obs(args: &[String]) -> Result<(), CliError> {
    let Some((action, rest)) = args.split_first() else {
        return Err(CliError::Usage(
            "obs needs an action (ls|report|grep|export)".to_string(),
        ));
    };
    match action.as_str() {
        "ls" => obs_ls(rest),
        "report" => obs_report(rest),
        "grep" => obs_grep(rest),
        "export" => obs_export(rest),
        other => Err(CliError::Usage(format!("unknown obs action {other:?}"))),
    }
}

fn runtime(e: impl std::fmt::Display) -> CliError {
    CliError::Runtime(e.to_string())
}

/// Resolves the journal directory: `--journal-dir` names it directly,
/// `--data-dir` points at a server data directory (journal under
/// `obs/`). Exactly the layout `serve --data-dir` writes.
fn journal_dir(args: &ParsedArgs) -> Result<PathBuf, CliError> {
    match (args.get("--journal-dir"), args.get("--data-dir")) {
        (Some(dir), _) => Ok(PathBuf::from(dir)),
        (None, Some(data)) => Ok(PathBuf::from(data).join("obs")),
        (None, None) => Err(CliError::Usage(
            "obs needs --data-dir <dir> (server data directory) or --journal-dir <dir>".to_string(),
        )),
    }
}

fn load(args: &ParsedArgs) -> Result<(PathBuf, Vec<SegmentData>), CliError> {
    let dir = journal_dir(args)?;
    let files = read_dir_all(&dir).map_err(runtime)?;
    if files.is_empty() {
        return Err(CliError::Runtime(format!(
            "no journal segments under {} (server not run with journaling?)",
            dir.display()
        )));
    }
    Ok((dir, files))
}

/// Unix milliseconds as a UTC `YYYY-MM-DDTHH:MM:SS.mmmZ` timestamp
/// (civil-from-days, no timezone database needed).
fn fmt_wall(ms: u64) -> String {
    let secs = ms / 1000;
    let millis = ms % 1000;
    let days = secs / 86_400;
    let tod = secs % 86_400;
    // Howard Hinnant's civil_from_days, shifted to the unix epoch.
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}.{millis:03}Z",
        tod / 3600,
        (tod % 3600) / 60,
        tod % 60
    )
}

fn file_name(seg: &SegmentData) -> String {
    seg.path.file_name().map_or_else(
        || seg.path.display().to_string(),
        |n| n.to_string_lossy().into_owned(),
    )
}

// ---------------------------------------------------------------------------
// obs ls
// ---------------------------------------------------------------------------

fn obs_ls(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(args, &["--data-dir", "--journal-dir"], &["--json"])?;
    let (dir, files) = load(&args)?;
    if args.has("--json") {
        let listed: Vec<Json> = files.iter().map(segment_summary_json).collect();
        let body = Json::obj([
            ("dir", Json::from(dir.display().to_string())),
            ("files", Json::Arr(listed)),
        ]);
        outln!("{}", body.encode());
        return Ok(());
    }
    outln!("journal at {}", dir.display());
    outln!("file\tkind\tseq\tevents\tbytes\tfrom\tto\tnote");
    for seg in &files {
        let kind = if seg.postmortem {
            "postmortem"
        } else {
            "segment"
        };
        let (from, to) = seg
            .wall_range_ms()
            .map_or(("-".to_string(), "-".to_string()), |(a, b)| {
                (fmt_wall(a), fmt_wall(b))
            });
        let note = if seg.torn {
            format!(
                "TORN tail ({} bytes beyond last valid record)",
                seg.file_bytes.saturating_sub(seg.valid_bytes)
            )
        } else {
            String::new()
        };
        outln!(
            "{}\t{kind}\t{}\t{}\t{}\t{from}\t{to}\t{note}",
            file_name(seg),
            seg.meta.seq,
            seg.events.len(),
            seg.file_bytes,
        );
    }
    let torn = files.iter().filter(|s| s.torn).count();
    if torn > 0 {
        outln!("note: {torn} file(s) have torn tails — every record above decoded checksum-verified; the next writer boot truncates the tail");
    }
    Ok(())
}

fn segment_summary_json(seg: &SegmentData) -> Json {
    let range = seg.wall_range_ms();
    Json::obj([
        ("file", Json::from(file_name(seg))),
        (
            "kind",
            Json::from(if seg.postmortem {
                "postmortem"
            } else {
                "segment"
            }),
        ),
        ("seq", Json::from(seg.meta.seq as usize)),
        ("events", Json::from(seg.events.len())),
        ("bytes", Json::from(seg.file_bytes as usize)),
        ("valid_bytes", Json::from(seg.valid_bytes as usize)),
        ("torn", Json::from(seg.torn)),
        (
            "from_ms",
            range.map_or(Json::Null, |(a, _)| Json::from(a as usize)),
        ),
        (
            "to_ms",
            range.map_or(Json::Null, |(_, b)| Json::from(b as usize)),
        ),
    ])
}

// ---------------------------------------------------------------------------
// obs report
// ---------------------------------------------------------------------------

fn obs_report(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(args, &["--data-dir", "--journal-dir", "--window"], &[])?;
    let window_secs = args.usize_flag("--window", Some(0))? as u64;
    let (dir, files) = load(&args)?;
    let (segments, postmortems): (Vec<&SegmentData>, Vec<&SegmentData>) =
        files.iter().partition(|s| !s.postmortem);

    outln!("journal report — {}", dir.display());
    let torn = segments.iter().filter(|s| s.torn).count();
    outln!(
        "{} segment(s), {} postmortem(s), {} torn tail(s)",
        segments.len(),
        postmortems.len(),
        torn
    );

    // Rebuild the last boot's windowed rates and percentiles from the
    // retained flight-recorder samples. Only the final contiguous
    // monotonic run counts: a sample stream straddling a restart would
    // regress, which is exactly what `checked_delta` refuses.
    let seg_refs: Vec<SegmentData> = segments.iter().map(|s| (*s).clone()).collect();
    let (schema, samples) = s2g_obs::journal::last_boot_samples(&seg_refs);
    report_samples(&schema, &samples, window_secs);

    // The event stream of the report window: watch transitions, slow and
    // error traces, warn/error log lines.
    let window_start = window_start_ms(&files, window_secs);
    report_events(&segments, window_start);

    for seg in &postmortems {
        report_postmortem(seg);
    }
    Ok(())
}

/// The wall-clock start of the report window: `window` seconds back from
/// the newest event anywhere in the journal (0 = everything).
fn window_start_ms(files: &[SegmentData], window_secs: u64) -> u64 {
    if window_secs == 0 {
        return 0;
    }
    let newest = files
        .iter()
        .filter_map(SegmentData::wall_range_ms)
        .map(|(_, to)| to)
        .max()
        .unwrap_or(0);
    newest.saturating_sub(window_secs.saturating_mul(1000))
}

/// Reconstructed rates and percentiles between the first and last
/// retained samples of the window — the offline mirror of
/// `GET /metrics/delta`, built on `checked_delta` so cross-boot or
/// cross-schema sample pairs fail loudly instead of underflowing.
fn report_samples(schema: &SeriesSchema, samples: &[SampleEvent], window_secs: u64) {
    let cutoff = if window_secs == 0 {
        0
    } else {
        samples
            .last()
            .map_or(0, |s| s.wall_ms.saturating_sub(window_secs * 1000))
    };
    let windowed: Vec<&SampleEvent> = samples.iter().filter(|s| s.wall_ms >= cutoff).collect();
    let (Some(first), Some(last)) = (windowed.first(), windowed.last()) else {
        outln!("\nno retained flight-recorder samples (was the sampler on?)");
        return;
    };
    if windowed.len() < 2 {
        outln!("\nonly one retained sample in the window — no rates to rebuild");
        return;
    }
    let seconds = last.sample.t_ns.saturating_sub(first.sample.t_ns) as f64 / 1e9;
    outln!(
        "\nlast boot, {} sample(s) spanning {:.1}s ({} .. {}):",
        windowed.len(),
        seconds,
        fmt_wall(first.wall_ms),
        fmt_wall(last.wall_ms)
    );
    let rate = |delta: u64| -> f64 {
        if seconds > 0.0 {
            delta as f64 / seconds
        } else {
            0.0
        }
    };

    // Counter deltas over the window.
    let mut any = false;
    for (name, (&now, &then)) in schema.counters.iter().zip(
        last.sample
            .counters
            .iter()
            .zip(first.sample.counters.iter()),
    ) {
        let delta = now.saturating_sub(then);
        if delta == 0 {
            continue;
        }
        any = true;
        outln!("  {name}  +{delta}  ({:.2}/s)", rate(delta));
    }
    if !any {
        outln!("  (no counter activity in the window)");
    }

    // Histogram deltas: strict — a regression or alien bucket aborts the
    // series with a loud note instead of printing garbage percentiles.
    let mut external = CompactHistogram::empty();
    let mut rows: Vec<(String, CompactHistogram)> = Vec::new();
    for (name, (now, then)) in schema.histograms.iter().zip(
        last.sample
            .histograms
            .iter()
            .zip(first.sample.histograms.iter()),
    ) {
        match now.checked_delta(then) {
            Ok(delta) => {
                if delta.count == 0 {
                    continue;
                }
                if name.starts_with("s2g_request_duration_ns{") {
                    external = external.merge(&delta);
                }
                rows.push((name.clone(), delta));
            }
            Err(e) => {
                outln!("  {name}: refusing delta ({e}) — samples disagree with the schema");
            }
        }
    }
    if external.count > 0 {
        outln!(
            "  external requests: {} in window  p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
            external.count,
            external.quantile(0.5) as f64 / 1e6,
            external.quantile(0.95) as f64 / 1e6,
            external.quantile(0.99) as f64 / 1e6,
            external.max as f64 / 1e6,
        );
    }
    for (name, delta) in &rows {
        let route = name
            .strip_prefix("s2g_request_duration_ns{route=\"")
            .and_then(|r| r.strip_suffix("\"}"));
        if let Some(route) = route {
            outln!(
                "    {route:<34} {:>6}  p50 {:.3} ms  p99 {:.3} ms",
                delta.count,
                delta.quantile(0.5) as f64 / 1e6,
                delta.quantile(0.99) as f64 / 1e6,
            );
        }
    }
}

/// The non-sample event stream of the window: watch transitions, traces
/// (slow or error — those are the only ones journaled), warn/error logs.
fn report_events(segments: &[&SegmentData], window_start: u64) {
    let mut watches = Vec::new();
    let mut traces = Vec::new();
    let mut logs = Vec::new();
    for seg in segments {
        for event in &seg.events {
            if event.wall_ms() < window_start {
                continue;
            }
            match event {
                JournalEvent::Watch(w) => watches.push(w),
                JournalEvent::Trace(t) => traces.push(t),
                JournalEvent::Log(l) => logs.push(l),
                _ => {}
            }
        }
    }
    if !watches.is_empty() {
        outln!("\nself-watch transitions ({}):", watches.len());
        for w in &watches {
            outln!(
                "  {}  {} {} -> {}  (value {:.4}, score {:.4})",
                fmt_wall(w.wall_ms),
                w.signal,
                w.from,
                w.to,
                w.value,
                w.score
            );
        }
    }
    if !traces.is_empty() {
        outln!("\nslow/error traces ({}):", traces.len());
        for t in traces.iter().take(20) {
            outln!(
                "  {}  {:016x}  {} -> {}  {:.3} ms  ({} span(s))",
                fmt_wall(t.wall_ms),
                t.id,
                t.route,
                t.status,
                t.total_ns as f64 / 1e6,
                t.spans.len()
            );
        }
        if traces.len() > 20 {
            outln!("  ... {} more (use obs grep)", traces.len() - 20);
        }
    }
    if !logs.is_empty() {
        outln!("\nwarn/error log lines ({}):", logs.len());
        for l in logs.iter().rev().take(10).rev() {
            outln!("  {}  {}", fmt_wall(l.wall_ms), log_line(l));
        }
        if logs.len() > 10 {
            outln!("  ... showing the last 10 (use obs grep --level warn)");
        }
    }
}

fn log_line(l: &LogEvent) -> String {
    let trace = if l.trace_id == 0 {
        String::new()
    } else {
        format!(" [trace {:016x}]", l.trace_id)
    };
    format!(
        "{:<5} {}: {}{trace}",
        l.level.as_str().to_ascii_uppercase(),
        l.target,
        l.msg
    )
}

fn report_postmortem(seg: &SegmentData) {
    outln!(
        "\npostmortem {} ({} event(s)):",
        file_name(seg),
        seg.events.len()
    );
    for event in &seg.events {
        match event {
            JournalEvent::Panic(p) => {
                outln!(
                    "  {}  PANIC at {}: {}",
                    fmt_wall(p.wall_ms),
                    p.location,
                    p.message
                );
            }
            JournalEvent::Trace(t) if t.in_flight => {
                outln!(
                    "  in-flight: {:016x}  {}  ({} span(s) finished before the panic)",
                    t.id,
                    t.route,
                    t.spans.len()
                );
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// obs grep
// ---------------------------------------------------------------------------

fn obs_grep(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(
        args,
        &[
            "--data-dir",
            "--journal-dir",
            "--route",
            "--trace",
            "--level",
            "--kind",
        ],
        &[],
    )?;
    let (_, files) = load(&args)?;
    let route = args.get("--route");
    let trace_id = match args.get("--trace") {
        None => None,
        Some(raw) => Some(u64::from_str_radix(raw, 16).map_err(|_| {
            CliError::Usage(format!("--trace expects a hex trace id, got {raw:?}"))
        })?),
    };
    let level = match args.get("--level") {
        None => None,
        Some(raw) => Some(s2g_obs::Level::parse(raw).ok_or_else(|| {
            CliError::Usage(format!(
                "--level expects error|warn|info|debug, got {raw:?}"
            ))
        })?),
    };
    let kind = args.get("--kind");
    let mut matched = 0usize;
    for seg in &files {
        for event in &seg.events {
            if !event_matches(event, route, trace_id, level, kind) {
                continue;
            }
            matched += 1;
            print_event(seg, event, trace_id.is_some());
        }
    }
    if matched == 0 {
        outln!("no matching events");
    }
    Ok(())
}

/// Whether one event passes every given filter. Filters compose as AND;
/// a filter an event kind cannot satisfy (e.g. `--route` on a log line)
/// excludes it.
fn event_matches(
    event: &JournalEvent,
    route: Option<&str>,
    trace_id: Option<u64>,
    level: Option<s2g_obs::Level>,
    kind: Option<&str>,
) -> bool {
    if let Some(kind) = kind {
        if event.kind() != kind {
            return false;
        }
    }
    if let Some(route) = route {
        match event {
            JournalEvent::Trace(t) => {
                if !t.route.contains(route) {
                    return false;
                }
            }
            _ => return false,
        }
    }
    if let Some(id) = trace_id {
        match event {
            JournalEvent::Trace(t) => {
                if t.id != id {
                    return false;
                }
            }
            JournalEvent::Log(l) => {
                if l.trace_id != id {
                    return false;
                }
            }
            _ => return false,
        }
    }
    if let Some(level) = level {
        match event {
            JournalEvent::Log(l) => {
                if l.level > level {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

fn print_event(seg: &SegmentData, event: &JournalEvent, expand_spans: bool) {
    let origin = file_name(seg);
    match event {
        JournalEvent::Sample(s) => {
            outln!(
                "{}  {origin}  sample  t_ns={}  {} counter(s), {} histogram(s)",
                fmt_wall(s.wall_ms),
                s.sample.t_ns,
                s.sample.counters.len(),
                s.sample.histograms.len()
            );
        }
        JournalEvent::Trace(t) => {
            let flight = if t.in_flight { "  IN-FLIGHT" } else { "" };
            outln!(
                "{}  {origin}  trace {:016x}  {} -> {}  {:.3} ms  ({} span(s)){flight}",
                fmt_wall(t.wall_ms),
                t.id,
                t.route,
                t.status,
                t.total_ns as f64 / 1e6,
                t.spans.len()
            );
            if expand_spans {
                print_span_tree(t, None, 2);
            }
        }
        JournalEvent::Watch(w) => {
            outln!(
                "{}  {origin}  watch  {} {} -> {}  (value {:.4}, score {:.4})",
                fmt_wall(w.wall_ms),
                w.signal,
                w.from,
                w.to,
                w.value,
                w.score
            );
        }
        JournalEvent::Log(l) => {
            outln!("{}  {origin}  log  {}", fmt_wall(l.wall_ms), log_line(l));
        }
        JournalEvent::Panic(p) => {
            outln!(
                "{}  {origin}  panic  at {}: {}",
                fmt_wall(p.wall_ms),
                p.location,
                p.message
            );
        }
    }
}

/// Prints one trace's span tree, children indented under their parent —
/// the offline analogue of `s2g client trace`.
fn print_span_tree(trace: &TraceEvent, parent: Option<u32>, depth: usize) {
    for span in &trace.spans {
        if span.parent != parent {
            continue;
        }
        let attrs = if span.attrs.is_empty() {
            String::new()
        } else {
            let rendered: Vec<String> =
                span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("  [{}]", rendered.join(" "))
        };
        outln!(
            "{:indent$}{}  {:.3} ms{attrs}",
            "",
            span.name,
            span.duration_ns as f64 / 1e6,
            indent = depth
        );
        print_span_tree(trace, Some(span.id), depth + 2);
    }
}

// ---------------------------------------------------------------------------
// obs export
// ---------------------------------------------------------------------------

fn obs_export(args: &[String]) -> Result<(), CliError> {
    let args = ParsedArgs::parse(args, &["--data-dir", "--journal-dir"], &["--json"])?;
    let (_, files) = load(&args)?;
    // JSON lines, one per event (`--json` is accepted for symmetry with
    // the other subcommands; export is always machine-readable).
    for seg in &files {
        let origin = file_name(seg);
        for event in &seg.events {
            let mut body = event_json(event);
            if let Json::Obj(pairs) = &mut body {
                pairs.insert(0, ("file".to_string(), Json::from(origin.clone())));
                pairs.insert(1, ("seq".to_string(), Json::from(seg.meta.seq as usize)));
            }
            outln!("{}", body.encode());
        }
    }
    Ok(())
}

/// One journal event as JSON — kind-tagged, wall-clock stamped, with the
/// payload flattened into the object.
fn event_json(event: &JournalEvent) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![
        ("kind".to_string(), Json::from(event.kind())),
        ("wall_ms".to_string(), Json::from(event.wall_ms() as usize)),
    ];
    match event {
        JournalEvent::Sample(s) => {
            pairs.push(("t_ns".to_string(), Json::from(s.sample.t_ns as usize)));
            pairs.push((
                "counters".to_string(),
                Json::Arr(
                    s.sample
                        .counters
                        .iter()
                        .map(|&v| Json::from(v as usize))
                        .collect(),
                ),
            ));
            pairs.push((
                "gauges".to_string(),
                Json::Arr(
                    s.sample
                        .gauges
                        .iter()
                        .map(|&v| Json::from(v as usize))
                        .collect(),
                ),
            ));
            pairs.push((
                "histograms".to_string(),
                Json::Arr(s.sample.histograms.iter().map(compact_json).collect()),
            ));
        }
        JournalEvent::Trace(t) => {
            pairs.push(("trace".to_string(), Json::from(format!("{:016x}", t.id))));
            pairs.push(("route".to_string(), Json::from(t.route.clone())));
            pairs.push(("status".to_string(), Json::from(t.status as usize)));
            pairs.push(("total_ns".to_string(), Json::from(t.total_ns as usize)));
            pairs.push(("in_flight".to_string(), Json::from(t.in_flight)));
            let spans: Vec<Json> = t
                .spans
                .iter()
                .map(|span| {
                    Json::obj([
                        ("id", Json::from(span.id as usize)),
                        (
                            "parent",
                            span.parent.map_or(Json::Null, |p| Json::from(p as usize)),
                        ),
                        ("name", Json::from(span.name.clone())),
                        ("start_ns", Json::from(span.start_ns as usize)),
                        ("duration_ns", Json::from(span.duration_ns as usize)),
                        (
                            "attrs",
                            Json::Obj(
                                span.attrs
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::from(v.clone())))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect();
            pairs.push(("spans".to_string(), Json::Arr(spans)));
        }
        JournalEvent::Watch(w) => {
            pairs.push(("signal".to_string(), Json::from(w.signal.clone())));
            pairs.push(("from".to_string(), Json::from(w.from.clone())));
            pairs.push(("to".to_string(), Json::from(w.to.clone())));
            pairs.push(("value".to_string(), Json::from(w.value)));
            pairs.push(("score".to_string(), Json::from(w.score)));
        }
        JournalEvent::Log(l) => {
            pairs.push(("level".to_string(), Json::from(l.level.as_str())));
            pairs.push(("target".to_string(), Json::from(l.target.clone())));
            pairs.push(("msg".to_string(), Json::from(l.msg.clone())));
            if l.trace_id != 0 {
                pairs.push((
                    "trace".to_string(),
                    Json::from(format!("{:016x}", l.trace_id)),
                ));
            }
        }
        JournalEvent::Panic(p) => {
            pairs.push(("message".to_string(), Json::from(p.message.clone())));
            pairs.push(("location".to_string(), Json::from(p.location.clone())));
        }
    }
    Json::Obj(pairs)
}

fn compact_json(hist: &CompactHistogram) -> Json {
    Json::obj([
        ("count", Json::from(hist.count as usize)),
        ("sum_ns", Json::from(hist.sum as usize)),
        ("max_ns", Json::from(hist.max as usize)),
        ("p50_ns", Json::from(hist.quantile(0.5) as usize)),
        ("p99_ns", Json::from(hist.quantile(0.99) as usize)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_needs_an_action_and_a_directory() {
        assert!(matches!(cmd_obs(&[]), Err(CliError::Usage(_))));
        let bogus: Vec<String> = vec!["frobnicate".to_string()];
        assert!(matches!(cmd_obs(&bogus), Err(CliError::Usage(_))));
        let no_dir: Vec<String> = vec!["ls".to_string()];
        assert!(matches!(cmd_obs(&no_dir), Err(CliError::Usage(_))));
    }

    #[test]
    fn missing_journal_directory_is_a_runtime_error() {
        let args: Vec<String> = ["report", "--journal-dir", "/nonexistent/s2g-obs-test"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(cmd_obs(&args), Err(CliError::Runtime(_))));
    }

    #[test]
    fn wall_clock_formatting_is_civil_utc() {
        assert_eq!(fmt_wall(0), "1970-01-01T00:00:00.000Z");
        // 1.7 billion seconds: 2023-11-14 22:13:20 UTC.
        assert_eq!(fmt_wall(1_700_000_000_042), "2023-11-14T22:13:20.042Z");
        // Leap-year boundary: 2024-02-29.
        assert_eq!(fmt_wall(1_709_164_800_000), "2024-02-29T00:00:00.000Z");
    }
}
