//! # s2g-failpoints — named failure injection for chaos drills
//!
//! Production robustness is proven by *causing* failures, not waiting for
//! them. This crate compiles a small, fixed registry of named failpoints
//! into the serving stack's hot paths (store writes, store reads, pool
//! task execution, connection reads, journal appends) behind a single
//! relaxed atomic check:
//!
//! * **Zero-cost when off** — [`check`] is one relaxed `AtomicUsize` load
//!   when no failpoint is armed anywhere in the process; the slow path
//!   (name lookup, probability draw, budget accounting) only runs while a
//!   drill is active.
//! * **Fixed registry** — the failpoint names are a compile-time table
//!   ([`NAMES`]), like the metrics grid: arming an unknown name is an
//!   error, not a silent no-op, so drills cannot typo their way into
//!   "passing".
//! * **Actions** — `off`, `error` (an injected `io::Error` whose errno
//!   matches the name's suffix: `.enospc` → `ENOSPC`, `.eio` → `EIO`),
//!   `delay:<ms>` (sleep, then proceed), and `panic`.
//! * **Probability & budgets** — each failpoint fires with a configurable
//!   probability (deterministic xorshift draw, so drills replay) and an
//!   optional hit budget: after `budget` triggers the failpoint disarms
//!   itself.
//! * **Accounting** — every trigger increments a per-failpoint counter
//!   ([`snapshot`] feeds `/metrics`) and invokes an optional process-wide
//!   hook ([`set_trigger_hook`]) the server uses to journal triggers.
//!
//! Spec grammar (for `serve --failpoints` and the `S2G_FAILPOINTS` env
//! var): comma-separated `name=action` entries, where `action` is
//! `off | error | panic | delay:<ms>`, each optionally followed by
//! `;p=<0..=1>` (probability, default 1) and `;budget=<n>` (max triggers,
//! default unlimited):
//!
//! ```text
//! store.write.enospc=error;budget=3,net.read.stall=delay:25;p=0.5
//! ```
//!
//! Failpoint state is process-global by design — a drill arms a failpoint
//! over the wire and the fault fires deep inside the store or pool of the
//! same process. Tests that arm failpoints must serialize on a lock and
//! disarm on exit (see the server's `chaos_drills` suite).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Every failpoint compiled into the stack. Arming any other name is a
/// [`FailpointError::UnknownName`].
pub const NAMES: &[&str] = &[
    // Store `atomic_write` (model save / manifest write) fails ENOSPC.
    "store.write.enospc",
    // Store section fault (lazy points read) fails EIO.
    "store.read.eio",
    // Pool task execution panics mid-compute.
    "pool.task.panic",
    // Server connection read stalls (delay) or drops (error).
    "net.read.stall",
    // Journal segment append fails ENOSPC.
    "journal.write.enospc",
];

const ACTION_OFF: u8 = 0;
const ACTION_ERROR: u8 = 1;
const ACTION_DELAY: u8 = 2;
const ACTION_PANIC: u8 = 3;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Disarmed: the failpoint never fires.
    Off,
    /// Return an injected I/O error (errno chosen from the name suffix).
    Error,
    /// Sleep for the given duration, then proceed normally.
    Delay(Duration),
    /// Panic at the failpoint site.
    Panic,
}

impl Action {
    /// Stable lowercase name (`off`/`error`/`delay`/`panic`).
    pub fn kind(&self) -> &'static str {
        match self {
            Action::Off => "off",
            Action::Error => "error",
            Action::Delay(_) => "delay",
            Action::Panic => "panic",
        }
    }
}

/// Full arming configuration for one failpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Settings {
    /// What the failpoint does when it fires.
    pub action: Action,
    /// Probability in `[0, 1]` that an armed hit actually fires.
    pub probability: f64,
    /// Maximum number of triggers before the failpoint disarms itself;
    /// `None` is unlimited.
    pub budget: Option<u64>,
}

impl Settings {
    /// An always-firing, unlimited-budget configuration for `action`.
    pub fn new(action: Action) -> Self {
        Settings {
            action,
            probability: 1.0,
            budget: None,
        }
    }
}

/// The fault a firing failpoint asks its call site to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Inject an error (call sites use [`injected_io_error`]).
    Error,
    /// Sleep this long, then proceed.
    Delay(Duration),
    /// Panic here.
    Panic,
}

/// Errors from arming or parsing failpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailpointError {
    /// The name is not in the compiled registry ([`NAMES`]).
    UnknownName(String),
    /// A spec string did not parse; the message points at the bad entry.
    BadSpec(String),
}

impl fmt::Display for FailpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailpointError::UnknownName(name) => {
                write!(
                    f,
                    "unknown failpoint {name:?} (known: {})",
                    NAMES.join(", ")
                )
            }
            FailpointError::BadSpec(msg) => write!(f, "bad failpoint spec: {msg}"),
        }
    }
}

impl std::error::Error for FailpointError {}

/// One failpoint's live state for `/metrics` and `POST /debug/failpoint`
/// responses.
#[derive(Debug, Clone, PartialEq)]
pub struct Status {
    /// Registry name.
    pub name: &'static str,
    /// Action kind (`off`/`error`/`delay`/`panic`).
    pub action: &'static str,
    /// Delay in milliseconds (0 unless the action is `delay`).
    pub delay_ms: u64,
    /// Firing probability in `[0, 1]`.
    pub probability: f64,
    /// Remaining trigger budget; `None` is unlimited.
    pub budget_remaining: Option<u64>,
    /// Lifetime trigger count (survives disarm; monotonic).
    pub triggers: u64,
}

#[derive(Debug)]
struct State {
    action: std::sync::atomic::AtomicU8,
    delay_ms: AtomicU64,
    prob_permille: AtomicU32,
    /// Remaining budget; `u64::MAX` means unlimited.
    budget: AtomicU64,
    triggers: AtomicU64,
}

impl State {
    const fn new() -> Self {
        State {
            action: std::sync::atomic::AtomicU8::new(ACTION_OFF),
            delay_ms: AtomicU64::new(0),
            prob_permille: AtomicU32::new(1000),
            budget: AtomicU64::new(u64::MAX),
            triggers: AtomicU64::new(0),
        }
    }
}

// One slot per NAMES entry; positions align.
const _: () = assert!(NAMES.len() == 5, "STATES must grow with NAMES");
static STATES: [State; 5] = [
    State::new(),
    State::new(),
    State::new(),
    State::new(),
    State::new(),
];

/// Count of armed failpoints — the single global gate [`check`] loads.
static ARMED: AtomicUsize = AtomicUsize::new(0);

/// Deterministic xorshift64* state for probability draws.
static RNG: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);

type TriggerHook = dyn Fn(&'static str, &'static str) + Send + Sync;

static HOOK: Mutex<Option<std::sync::Arc<TriggerHook>>> = Mutex::new(None);

fn index_of(name: &str) -> Option<usize> {
    NAMES.iter().position(|&n| n == name)
}

fn draw_permille() -> u32 {
    // xorshift64* on a shared atomic: races only lose a step of the
    // sequence, never its determinism guarantees for single-threaded
    // drills.
    let mut x = RNG.load(Ordering::Relaxed);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    RNG.store(x, Ordering::Relaxed);
    (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % 1000) as u32
}

/// Installs (replacing any previous) the process-wide trigger hook,
/// invoked as `(failpoint name, action kind)` on every fire — the server
/// journals triggers through it. Pass-through of the serving path's
/// latency does not matter here: the hook only runs when a fault fires.
pub fn set_trigger_hook(hook: std::sync::Arc<TriggerHook>) {
    *HOOK.lock().unwrap_or_else(|e| e.into_inner()) = Some(hook);
}

/// Removes the trigger hook.
pub fn clear_trigger_hook() {
    *HOOK.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

fn fire_hook(name: &'static str, kind: &'static str) {
    let hook = HOOK.lock().unwrap_or_else(|e| e.into_inner()).clone();
    if let Some(hook) = hook {
        hook(name, kind);
    }
}

/// Arms `name` with `settings` (action `Off` disarms). Probability is
/// clamped to `[0, 1]`; a budget of `Some(0)` disarms immediately.
///
/// # Errors
/// [`FailpointError::UnknownName`] when `name` is not compiled in.
pub fn arm(name: &str, settings: Settings) -> Result<(), FailpointError> {
    let idx = index_of(name).ok_or_else(|| FailpointError::UnknownName(name.to_string()))?;
    let state = &STATES[idx];
    let (code, delay_ms) = match settings.action {
        Action::Off => (ACTION_OFF, 0),
        Action::Error => (ACTION_ERROR, 0),
        Action::Delay(d) => (
            ACTION_DELAY,
            u64::try_from(d.as_millis()).unwrap_or(u64::MAX),
        ),
        Action::Panic => (ACTION_PANIC, 0),
    };
    let effective = if settings.budget == Some(0) {
        ACTION_OFF
    } else {
        code
    };
    let permille = (settings.probability.clamp(0.0, 1.0) * 1000.0).round() as u32;
    state.delay_ms.store(delay_ms, Ordering::Relaxed);
    state.prob_permille.store(permille, Ordering::Relaxed);
    state
        .budget
        .store(settings.budget.unwrap_or(u64::MAX), Ordering::Relaxed);
    let previous = state.action.swap(effective, Ordering::Relaxed);
    match (previous != ACTION_OFF, effective != ACTION_OFF) {
        (false, true) => {
            ARMED.fetch_add(1, Ordering::Relaxed);
        }
        (true, false) => {
            ARMED.fetch_sub(1, Ordering::Relaxed);
        }
        _ => {}
    }
    Ok(())
}

/// Disarms `name`.
///
/// # Errors
/// [`FailpointError::UnknownName`] when `name` is not compiled in.
pub fn disarm(name: &str) -> Result<(), FailpointError> {
    arm(name, Settings::new(Action::Off))
}

/// Disarms every failpoint (trigger counters are retained).
pub fn disarm_all() {
    for name in NAMES {
        let _ = disarm(name);
    }
}

fn self_disarm(state: &State) {
    if state.action.swap(ACTION_OFF, Ordering::Relaxed) != ACTION_OFF {
        ARMED.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Evaluates the failpoint `name` at a call site. Returns `None` when the
/// failpoint is off, out of budget, or lost its probability draw; a
/// [`Fault`] the site must inject otherwise. The fast path — nothing
/// armed anywhere — is a single relaxed atomic load.
#[inline]
pub fn check(name: &'static str) -> Option<Fault> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    check_slow(name)
}

#[cold]
fn check_slow(name: &'static str) -> Option<Fault> {
    let state = &STATES[index_of(name)?];
    let action = state.action.load(Ordering::Relaxed);
    if action == ACTION_OFF {
        return None;
    }
    let permille = state.prob_permille.load(Ordering::Relaxed);
    if permille < 1000 && draw_permille() >= permille {
        return None;
    }
    // Budget: claim one hit; u64::MAX means unlimited (and would take
    // longer than the universe to drain one fetch_sub at a time).
    let before = state.budget.load(Ordering::Relaxed);
    if before != u64::MAX {
        if before == 0 {
            self_disarm(state);
            return None;
        }
        let remaining = state.budget.fetch_sub(1, Ordering::Relaxed);
        if remaining == 0 {
            // Lost a race past zero: restore and disarm.
            state.budget.store(0, Ordering::Relaxed);
            self_disarm(state);
            return None;
        }
        if remaining == 1 {
            self_disarm(state);
        }
    }
    state.triggers.fetch_add(1, Ordering::Relaxed);
    let fault = match action {
        ACTION_ERROR => Fault::Error,
        ACTION_DELAY => Fault::Delay(Duration::from_millis(
            state.delay_ms.load(Ordering::Relaxed),
        )),
        _ => Fault::Panic,
    };
    fire_hook(
        name,
        match fault {
            Fault::Error => "error",
            Fault::Delay(_) => "delay",
            Fault::Panic => "panic",
        },
    );
    Some(fault)
}

/// The injected `io::Error` for an error fault at `name`: errno `ENOSPC`
/// for `.enospc` names, `EIO` for `.eio`, a plain "other" error
/// otherwise. Errno-suffixed names return a genuine OS error
/// (`raw_os_error()` is set), so call sites that classify disk faults by
/// errno treat injected and real failures identically.
pub fn injected_io_error(name: &str) -> std::io::Error {
    if name.ends_with(".enospc") {
        std::io::Error::from_raw_os_error(28) // ENOSPC
    } else if name.ends_with(".eio") {
        std::io::Error::from_raw_os_error(5) // EIO
    } else {
        std::io::Error::other(format!("failpoint {name} injected error"))
    }
}

/// The all-in-one call-site helper: evaluates `name`, sleeps through
/// delay faults, panics on panic faults, and returns the injected
/// `io::Error` for error faults (`None` when nothing fired).
pub fn hit(name: &'static str) -> Option<std::io::Error> {
    match check(name)? {
        Fault::Error => Some(injected_io_error(name)),
        Fault::Delay(d) => {
            std::thread::sleep(d);
            None
        }
        Fault::Panic => panic!("failpoint {name} injected panic"),
    }
}

/// Live status of every registered failpoint, in [`NAMES`] order.
pub fn snapshot() -> Vec<Status> {
    NAMES
        .iter()
        .zip(STATES.iter())
        .map(|(&name, state)| {
            let action = match state.action.load(Ordering::Relaxed) {
                ACTION_ERROR => "error",
                ACTION_DELAY => "delay",
                ACTION_PANIC => "panic",
                _ => "off",
            };
            let budget = state.budget.load(Ordering::Relaxed);
            Status {
                name,
                action,
                delay_ms: state.delay_ms.load(Ordering::Relaxed),
                probability: f64::from(state.prob_permille.load(Ordering::Relaxed)) / 1000.0,
                budget_remaining: (budget != u64::MAX).then_some(budget),
                triggers: state.triggers.load(Ordering::Relaxed),
            }
        })
        .collect()
}

/// Status of one failpoint.
///
/// # Errors
/// [`FailpointError::UnknownName`] when `name` is not compiled in.
pub fn status(name: &str) -> Result<Status, FailpointError> {
    let idx = index_of(name).ok_or_else(|| FailpointError::UnknownName(name.to_string()))?;
    Ok(snapshot().swap_remove(idx))
}

/// Parses one `name=action[;p=..][;budget=..]` entry into `(name,
/// settings)` without arming it.
///
/// # Errors
/// [`FailpointError::BadSpec`] on grammar errors,
/// [`FailpointError::UnknownName`] for unregistered names.
pub fn parse_entry(entry: &str) -> Result<(&str, Settings), FailpointError> {
    let bad = |msg: String| FailpointError::BadSpec(msg);
    let (name, rest) = entry
        .split_once('=')
        .ok_or_else(|| bad(format!("{entry:?} is not name=action")))?;
    let name = name.trim();
    if index_of(name).is_none() {
        return Err(FailpointError::UnknownName(name.to_string()));
    }
    let mut parts = rest.split(';');
    let action_part = parts.next().unwrap_or("").trim();
    let action = match action_part.split_once(':') {
        Some(("delay", ms)) => {
            let ms: u64 = ms
                .trim()
                .parse()
                .map_err(|_| bad(format!("delay wants milliseconds, got {ms:?}")))?;
            Action::Delay(Duration::from_millis(ms))
        }
        None => match action_part {
            "off" => Action::Off,
            "error" => Action::Error,
            "panic" => Action::Panic,
            other => return Err(bad(format!("unknown action {other:?} in {entry:?}"))),
        },
        Some((other, _)) => return Err(bad(format!("unknown action {other:?} in {entry:?}"))),
    };
    let mut settings = Settings::new(action);
    for modifier in parts {
        let modifier = modifier.trim();
        match modifier.split_once('=') {
            Some(("p", v)) => {
                settings.probability = v
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("p wants a probability, got {v:?}")))?;
                if !(0.0..=1.0).contains(&settings.probability) {
                    return Err(bad(format!("p={v} outside [0, 1]")));
                }
            }
            Some(("budget", v)) => {
                settings.budget = Some(
                    v.trim()
                        .parse()
                        .map_err(|_| bad(format!("budget wants a count, got {v:?}")))?,
                );
            }
            _ => return Err(bad(format!("unknown modifier {modifier:?} in {entry:?}"))),
        }
    }
    Ok((name, settings))
}

/// Parses and arms a full spec string (comma-separated entries; empty
/// strings and the literal `on` arm nothing — they just exist so `serve
/// --failpoints on` can enable the debug endpoint without arming).
///
/// # Errors
/// The first entry that fails to parse or names an unknown failpoint;
/// entries before it stay armed.
pub fn apply_spec(spec: &str) -> Result<(), FailpointError> {
    let spec = spec.trim();
    if spec.is_empty() || spec == "on" {
        return Ok(());
    }
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, settings) = parse_entry(entry)?;
        arm(name, settings)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::{Arc, Mutex, MutexGuard};

    // Failpoint state is process-global; tests serialize on this lock and
    // disarm everything on entry.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        clear_trigger_hook();
        guard
    }

    #[test]
    fn off_means_none_and_unknown_names_fail_closed() {
        let _guard = lock();
        assert_eq!(check("store.write.enospc"), None);
        assert!(matches!(
            arm("no.such.point", Settings::new(Action::Error)),
            Err(FailpointError::UnknownName(_))
        ));
    }

    #[test]
    fn error_fault_fires_counts_and_builds_errno_errors() {
        let _guard = lock();
        let before = status("store.write.enospc").unwrap().triggers;
        arm("store.write.enospc", Settings::new(Action::Error)).unwrap();
        assert_eq!(check("store.write.enospc"), Some(Fault::Error));
        let status = status("store.write.enospc").unwrap();
        assert_eq!(status.action, "error");
        assert_eq!(status.triggers, before + 1);
        let err = injected_io_error("store.write.enospc");
        // A genuine OS error: call sites classifying disk faults by errno
        // must see injected and real ENOSPC identically.
        assert_eq!(err.raw_os_error(), Some(28));
        assert_eq!(
            injected_io_error("store.read.eio").raw_os_error(),
            Some(5),
            "eio maps to errno 5"
        );
        assert!(injected_io_error("pool.task.panic")
            .to_string()
            .contains("pool.task.panic"));
        disarm_all();
        assert_eq!(check("store.write.enospc"), None);
    }

    #[test]
    fn budget_self_disarms_after_n_triggers() {
        let _guard = lock();
        arm(
            "store.read.eio",
            Settings {
                action: Action::Error,
                probability: 1.0,
                budget: Some(2),
            },
        )
        .unwrap();
        assert_eq!(check("store.read.eio"), Some(Fault::Error));
        assert_eq!(check("store.read.eio"), Some(Fault::Error));
        assert_eq!(check("store.read.eio"), None);
        assert_eq!(status("store.read.eio").unwrap().action, "off");
        assert_eq!(status("store.read.eio").unwrap().budget_remaining, Some(0));
    }

    #[test]
    fn zero_probability_never_fires_and_spec_round_trips() {
        let _guard = lock();
        apply_spec("net.read.stall=delay:25;p=0,journal.write.enospc=error;budget=7").unwrap();
        for _ in 0..100 {
            assert_eq!(check("net.read.stall"), None, "p=0 must never fire");
        }
        let s = status("net.read.stall").unwrap();
        assert_eq!((s.action, s.delay_ms, s.probability), ("delay", 25, 0.0));
        let j = status("journal.write.enospc").unwrap();
        assert_eq!((j.action, j.budget_remaining), ("error", Some(7)));
        disarm_all();
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _guard = lock();
        assert!(apply_spec("store.write.enospc").is_err());
        assert!(apply_spec("store.write.enospc=explode").is_err());
        assert!(apply_spec("store.write.enospc=error;p=2").is_err());
        assert!(apply_spec("bogus=error").is_err());
        // Empty / "on" are no-ops that succeed.
        apply_spec("").unwrap();
        apply_spec("on").unwrap();
    }

    #[test]
    fn hit_sleeps_through_delay_and_returns_errors() {
        let _guard = lock();
        arm(
            "net.read.stall",
            Settings::new(Action::Delay(Duration::from_millis(5))),
        )
        .unwrap();
        let t0 = std::time::Instant::now();
        assert!(hit("net.read.stall").is_none());
        assert!(t0.elapsed() >= Duration::from_millis(5));
        arm("net.read.stall", Settings::new(Action::Error)).unwrap();
        assert!(hit("net.read.stall").is_some());
        disarm_all();
    }

    #[test]
    fn trigger_hook_sees_every_fire() {
        let _guard = lock();
        let seen = Arc::new(AtomicUsize::new(0));
        let hook_seen = Arc::clone(&seen);
        set_trigger_hook(Arc::new(move |name, kind| {
            assert_eq!(name, "pool.task.panic");
            assert_eq!(kind, "error");
            hook_seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }));
        // Arm as error (not panic) so the test thread survives checking.
        arm("pool.task.panic", Settings::new(Action::Error)).unwrap();
        assert!(check("pool.task.panic").is_some());
        assert!(check("pool.task.panic").is_some());
        assert_eq!(seen.load(std::sync::atomic::Ordering::Relaxed), 2);
        clear_trigger_hook();
        disarm_all();
    }

    #[test]
    #[should_panic(expected = "failpoint")]
    fn panic_action_panics() {
        // Deliberately does not take the lock pattern of disarming at the
        // end (it panics); uses the lock only to serialize.
        let _guard = lock();
        arm("pool.task.panic", Settings::new(Action::Panic)).unwrap();
        let _ = hit("pool.task.panic");
    }
}
