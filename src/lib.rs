//! # series2graph
//!
//! A Rust implementation of **Series2Graph** (Boniol & Palpanas, VLDB 2020):
//! unsupervised, domain-agnostic subsequence anomaly detection for univariate
//! data series, together with the complete evaluation substrate of the paper
//! (dataset generators, baseline detectors, evaluation metrics).
//!
//! This facade crate re-exports the workspace crates under one roof:
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`core`] | `s2g-core` | the Series2Graph model (`fit` → `score` → `top-k`) |
//! | [`adapt`] | `s2g-adapt` | online graph adaptation: decayed edge updates, drift detection, adaptive policy, versioned snapshots |
//! | [`engine`] | `s2g-engine` | concurrent multi-series serving: model registry, persistence, sharded worker pool |
//! | [`store`] | `s2g-store` | durable model store: crash-safe directory, manifest, lazy section residency |
//! | [`server`] | `s2g-server` | TCP/HTTP front-end over the engine, protocol client, `s2g` CLI |
//! | [`obs`] | `s2g-obs` | observability: lock-free latency histograms, request tracing, leveled logging |
//! | [`timeseries`] | `s2g-timeseries` | series container, distances, windows, filters, CSV I/O |
//! | [`linalg`] | `s2g-linalg` | PCA, randomized SVD, rotations, KDE |
//! | [`graph`] | `s2g-graph` | weighted digraph, θ-Normality subgraphs |
//! | [`datasets`] | `s2g-datasets` | synthetic equivalents of the paper's evaluation corpus |
//! | [`baselines`] | `s2g-baselines` | STOMP, discords/DAD, LOF, Isolation Forest, GrammarViz-style, forecasting |
//! | [`eval`] | `s2g-eval` | Top-k accuracy, precision/recall, AUC, result tables, the scenario gauntlet (`s2g eval`) |
//!
//! ## Quick start
//!
//! ```
//! use series2graph::prelude::*;
//!
//! // A periodic signal with a burst of different shape in the middle.
//! let mut values: Vec<f64> = (0..6000)
//!     .map(|i| (std::f64::consts::TAU * i as f64 / 100.0).sin())
//!     .collect();
//! for (offset, v) in values[3000..3150].iter_mut().enumerate() {
//!     *v = (std::f64::consts::TAU * offset as f64 / 30.0).sin();
//! }
//! let series = TimeSeries::from(values);
//!
//! // Fit the graph with pattern length ℓ = 50 and score windows of length 150.
//! let model = Series2Graph::fit(&series, &S2gConfig::new(50)).unwrap();
//! let scores = model.anomaly_scores(&series, 150).unwrap();
//! let detections = model.top_k_anomalies(&scores, 1, 150);
//! assert!((2900..3200).contains(&detections[0]));
//! ```
//!
//! ## Serving many series: the engine
//!
//! Fitting is the expensive step; scoring is cheap. The [`engine`] module
//! turns that asymmetry into a serving layer: a thread-safe
//! [`engine::ModelRegistry`] of named, `Arc`-shared models with LRU
//! eviction; a versioned binary codec ([`engine::codec`]) that round-trips a
//! fitted model **bit-identically** so one process can train and many can
//! score; a sharded worker pool ([`engine::WorkerPool`]) fanning batched
//! fit/score jobs and pinned streaming sessions across threads with
//! deterministic, submission-ordered results; and the `s2g` binary exposing
//! `fit`, `score`, `stream`, `bench-throughput` and `eval` over CSV files:
//!
//! ```bash
//! s2g fit   --input traffic.csv --output traffic.s2g --pattern-length 50
//! s2g score --model traffic.s2g --query-length 150 --top-k 3 day1.csv day2.csv
//! ```
//!
//! The [`server`] module puts the engine on the network: `s2g serve` runs a
//! hand-rolled TCP/HTTP front-end over a shared registry, and `s2g client`
//! fits/scores/streams against it remotely with bit-identical results (wire
//! format: `docs/PROTOCOL.md`):
//!
//! ```bash
//! s2g serve --addr 127.0.0.1:7878
//! s2g client fit   --addr 127.0.0.1:7878 --name traffic --input traffic.csv --pattern-length 50
//! s2g client score --addr 127.0.0.1:7878 --name traffic --query-length 150 day1.csv
//! ```
//!
//! ```
//! use series2graph::prelude::*;
//!
//! let engine = Engine::new(EngineConfig::default().with_workers(2));
//! let train: Vec<f64> = (0..3000)
//!     .map(|i| (std::f64::consts::TAU * i as f64 / 100.0).sin())
//!     .collect();
//! engine
//!     .fit_model("line-7", &TimeSeries::from(train), &S2gConfig::new(50))
//!     .unwrap();
//! let fleet = vec![TimeSeries::from(
//!     (0..800)
//!         .map(|i| (std::f64::consts::TAU * i as f64 / 100.0).sin())
//!         .collect::<Vec<f64>>(),
//! )];
//! let profiles = engine.score_many("line-7", fleet, 150).unwrap();
//! assert_eq!(profiles[0].as_ref().unwrap().len(), 800 - 150 + 1);
//! ```
//!
//! ## Measuring accuracy: the scenario gauntlet
//!
//! `s2g eval` runs Series2Graph (frozen and adaptive) plus eight baseline
//! detectors over a registry of labelled scenarios — periodic anomalies,
//! noise, training contamination, long discords, concept drift — and scores
//! every run with AUC-ROC / AUC-PR / precision@k / top-k accuracy. With a
//! fixed `--seed` the `--json` output is byte-identical across runs; the
//! committed trajectory lives in `BENCH_ACCURACY.json` and the protocol in
//! `docs/EVALUATION.md`:
//!
//! ```bash
//! s2g eval --seed 42 --check          # human table + win-condition check
//! s2g eval --seed 42 --rev pr7 --json # deterministic BENCH_ACCURACY lines
//! ```
//!
//! See the `examples/` directory for complete scenarios (ECG monitoring,
//! variable-length anomalies, method comparison, prefix/streaming models,
//! an `engine_fleet` serving walkthrough) and the `s2g-bench` crate for the
//! harness regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The Series2Graph model (re-export of `s2g-core`).
pub use s2g_core as core;

/// Online graph adaptation (re-export of `s2g-adapt`).
pub use s2g_adapt as adapt;

/// Concurrent multi-series detection engine (re-export of `s2g-engine`).
pub use s2g_engine as engine;

/// Durable, lazily-loaded model store (re-export of `s2g-store`).
pub use s2g_store as store;

/// TCP/HTTP serving front-end over the engine (re-export of `s2g-server`).
pub use s2g_server as server;

/// Latency histograms, request tracing and leveled logging (re-export of
/// `s2g-obs`). See `docs/OBSERVABILITY.md` for the serving-stack wiring.
pub use s2g_obs as obs;

/// Time-series substrate (re-export of `s2g-timeseries`).
pub use s2g_timeseries as timeseries;

/// Linear-algebra kernels (re-export of `s2g-linalg`).
pub use s2g_linalg as linalg;

/// Graph model (re-export of `s2g-graph`).
pub use s2g_graph as graph;

/// Dataset generators (re-export of `s2g-datasets`).
pub use s2g_datasets as datasets;

/// Baseline detectors (re-export of `s2g-baselines`).
pub use s2g_baselines as baselines;

/// Evaluation metrics (re-export of `s2g-eval`).
pub use s2g_eval as eval;

/// The most commonly used types, importable with one `use`.
pub mod prelude {
    pub use s2g_adapt::{AdaptAction, AdaptConfig, AdaptiveScorer, DriftStats};
    pub use s2g_core::{AdaptationLineage, S2gConfig, Series2Graph, StreamingScorer};
    pub use s2g_datasets::{AnomalyKind, AnomalyRange, Dataset, LabeledSeries};
    pub use s2g_engine::{Engine, EngineConfig, ModelRegistry};
    pub use s2g_eval::topk::{top_k_accuracy, GroundTruth};
    pub use s2g_eval::{run_gauntlet, GauntletConfig, Scenario};
    pub use s2g_obs::{Histogram, Obs, TraceId};
    pub use s2g_store::{ModelStore, StoreConfig};
    pub use s2g_timeseries::TimeSeries;
}
