//! Property-based integration tests for the paper's structural claims:
//! whatever the (reasonable) generator parameters, the Series2Graph pipeline
//! must keep its invariants — score profiles have the right length, normality
//! is non-negative, θ-Normality/θ-Anomaly subgraphs partition the edges, and
//! anomaly scores stay within [0, 1].

use proptest::prelude::*;

use series2graph::core::scoring;
use series2graph::graph::normality::{theta_anomaly, theta_normality};
use series2graph::prelude::*;

fn srw_series(length: usize, anomalies: usize, noise: f64, seed: u64) -> LabeledSeries {
    series2graph::datasets::srw::generate_srw(series2graph::datasets::srw::SrwConfig {
        length,
        num_anomalies: anomalies,
        noise_ratio: noise,
        anomaly_length: 150,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pipeline_invariants_hold_for_random_srw_datasets(
        seed in 0u64..500,
        anomalies in 1usize..6,
        noise in 0.0f64..0.2,
        query in 150usize..400,
    ) {
        let data = srw_series(6_000, anomalies, noise, seed);
        let model = Series2Graph::fit(&data.series, &S2gConfig::new(50).with_lambda(16)).unwrap();

        // Graph invariants.
        prop_assert!(model.node_count() > 0);
        prop_assert!(model.graph().edge_count() > 0);
        prop_assert!(model.graph().total_weight() > 0.0);

        // Normality scores: correct length, finite, non-negative.
        let normality = model.normality_scores(&data.series, query).unwrap();
        prop_assert_eq!(normality.len(), data.len() - query + 1);
        prop_assert!(normality.iter().all(|s| s.is_finite() && *s >= 0.0));

        // Anomaly scores: same length, all within [0, 1].
        let anomaly = model.anomaly_scores(&data.series, query).unwrap();
        prop_assert_eq!(anomaly.len(), normality.len());
        prop_assert!(anomaly.iter().all(|s| (0.0..=1.0).contains(s)));

        // Top-k never returns trivially overlapping detections.
        let picks = model.top_k_anomalies(&anomaly, 5, query);
        for (i, &a) in picks.iter().enumerate() {
            for &b in picks.iter().skip(i + 1) {
                prop_assert!(a.abs_diff(b) >= query / 2);
            }
        }
    }

    #[test]
    fn theta_subgraphs_partition_edges_for_fitted_models(
        seed in 0u64..200,
        theta in 0.5f64..500.0,
    ) {
        let data = srw_series(4_000, 2, 0.05, seed);
        let model = Series2Graph::fit(&data.series, &S2gConfig::new(50).with_lambda(16)).unwrap();
        let graph = model.graph();
        let normal = theta_normality(graph, theta);
        let anomalous = theta_anomaly(graph, theta);
        // Every edge belongs to exactly one of the two subgraphs.
        prop_assert_eq!(normal.edge_count() + anomalous.edge_count(), graph.edge_count());
        // Node sets are disjoint (Definition 4).
        for n in &anomalous.nodes {
            prop_assert!(!normal.contains_node(*n));
        }
    }

    #[test]
    fn lemma1_low_path_normality_implies_theta_anomaly_membership(
        seed in 0u64..100,
    ) {
        // Lemma 1 of the paper: if Norm(path) < θ then the path is not fully
        // inside the θ-Normality subgraph. We verify it on the model's own
        // training transitions.
        let data = srw_series(4_000, 2, 0.0, seed);
        let model = Series2Graph::fit(&data.series, &S2gConfig::new(50).with_lambda(16)).unwrap();
        let graph = model.graph();
        let query = 200usize;
        let normality = model.normality_scores(&data.series, query).unwrap();
        // Pick θ as the median per-edge normality; any subsequence scoring
        // below θ/ℓq-normalised terms must contain at least one sub-θ edge.
        let theta = {
            let mut values: Vec<f64> = graph
                .edges()
                .map(|e| e.weight * (graph.degree(e.from) as f64 - 1.0))
                .collect();
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            values[values.len() / 2]
        };
        let normal_subgraph = theta_normality(graph, theta);
        // Scores are per-start averages; a score strictly below θ·(gaps)/ℓq can
        // only happen when at least one traversed edge is below θ.
        let gaps = (query - 50) as f64;
        for (start, &score) in normality.iter().enumerate().step_by(257) {
            if score * (query as f64) < theta * gaps - 1e-9 {
                // Re-derive this subsequence's transitions and check membership.
                let window = data.series.subsequence(start, query).unwrap();
                let points = model.embedding().project_slice(window).unwrap();
                let transitions = series2graph::core::edges::EdgeExtraction::map_transitions(
                    &points,
                    model.node_set(),
                );
                let any_below = transitions.iter().any(|&(from, to)| {
                    graph
                        .edge_weight(from, to)
                        .map(|w| w * (graph.degree(from) as f64 - 1.0) < theta)
                        .unwrap_or(true)
                });
                prop_assert!(
                    any_below,
                    "subsequence at {start} scores below θ but all its edges are θ-normal"
                );
                // Consistency with the subgraph view.
                let full_path_inside = transitions.iter().all(|&(from, to)| {
                    normal_subgraph.contains_edge(from, to)
                });
                prop_assert!(!full_path_inside || transitions.is_empty());
            }
        }
        let _ = scoring::anomaly_profile(&normality);
    }
}
