//! End-to-end integration tests spanning the whole workspace: dataset
//! generation → Series2Graph → evaluation, plus head-to-head comparisons with
//! the baselines on the scenarios the paper builds its claims on.

use series2graph::baselines::discord::dad_anomaly_scores;
use series2graph::baselines::iforest::{iforest_anomaly_scores, IsolationForestParams};
use series2graph::baselines::matrix_profile::stomp_anomaly_scores;
use series2graph::datasets::keogh::{generate_discord_dataset, DiscordDataset};
use series2graph::datasets::mba::{generate_mba_with_length, MbaRecord};
use series2graph::datasets::sed::generate_sed_with_length;
use series2graph::datasets::srw::{generate_srw, SrwConfig};
use series2graph::prelude::*;

fn truth_of(data: &LabeledSeries) -> GroundTruth {
    GroundTruth::new(data.anomalies.iter().map(|a| (a.start, a.length)).collect())
}

fn s2g_accuracy(data: &LabeledSeries, window: usize) -> f64 {
    let model =
        Series2Graph::fit(&data.series, &S2gConfig::new(50).with_lambda(16)).expect("fit failed");
    let scores = model
        .anomaly_scores(&data.series, window)
        .expect("scoring failed");
    let truth = truth_of(data);
    top_k_accuracy(&scores, window, &truth, truth.count())
}

#[test]
fn s2g_detects_recurrent_anomalies_on_srw() {
    let data = generate_srw(SrwConfig {
        length: 15_000,
        num_anomalies: 8,
        noise_ratio: 0.0,
        anomaly_length: 200,
        seed: 5,
    });
    let accuracy = s2g_accuracy(&data, 200);
    assert!(
        accuracy >= 0.85,
        "S2G accuracy on clean SRW too low: {accuracy}"
    );
}

#[test]
fn s2g_is_robust_to_noise_on_srw() {
    // Paper claim (Table 3): S2G accuracy is stable as noise grows to 25%.
    let mut accuracies = Vec::new();
    for noise in [0.0, 0.15, 0.25] {
        let data = generate_srw(SrwConfig {
            length: 12_000,
            num_anomalies: 8,
            noise_ratio: noise,
            anomaly_length: 200,
            seed: 9,
        });
        accuracies.push(s2g_accuracy(&data, 200));
    }
    for (i, acc) in accuracies.iter().enumerate() {
        assert!(*acc >= 0.6, "accuracy at noise level #{i} dropped to {acc}");
    }
}

#[test]
fn s2g_detects_ecg_premature_beats() {
    let data = generate_mba_with_length(MbaRecord::R803, 20_000, 3);
    let accuracy = s2g_accuracy(&data, 75);
    assert!(
        accuracy >= 0.5,
        "S2G accuracy on MBA(803)-like ECG too low: {accuracy}"
    );
}

#[test]
fn s2g_finds_the_single_discord_on_every_keogh_dataset() {
    for dataset in DiscordDataset::ALL {
        let data = generate_discord_dataset(dataset, 2);
        // Input lengths follow the paper's Figure 8 captions (G_200 for the
        // Marotta valve, G_150 for Ann Gun, G_50 for respiration, G_80 for BIDMC).
        let ell = match dataset {
            DiscordDataset::MarottaValve => 200,
            DiscordDataset::AnnGun => 150,
            DiscordDataset::PatientRespiration => 50,
            DiscordDataset::BidmcChf => 80,
        };
        let query = dataset.anomaly_length();
        let model = Series2Graph::fit(&data.series, &S2gConfig::new(ell)).expect("fit failed");
        let scores = model
            .anomaly_scores(&data.series, query)
            .expect("scoring failed");
        let truth = truth_of(&data);
        let accuracy = top_k_accuracy(&scores, query, &truth, 1);
        assert!(
            accuracy >= 1.0,
            "{}: the single discord was not the top detection",
            dataset.name()
        );
    }
}

#[test]
fn s2g_beats_first_discord_methods_on_recurrent_anomalies() {
    // The motivating claim of the paper: when the same anomaly repeats, plain
    // nearest-neighbour discords (STOMP) miss them, Series2Graph does not.
    let data = generate_mba_with_length(MbaRecord::R14046, 20_000, 8);
    let window = 75;
    let truth = truth_of(&data);
    let k = truth.count();

    let s2g = s2g_accuracy(&data, window);
    let stomp = stomp_anomaly_scores(&data.series, window)
        .map(|s| top_k_accuracy(&s, window, &truth, k))
        .unwrap();
    assert!(
        s2g >= stomp,
        "S2G ({s2g}) should not be worse than STOMP ({stomp}) on recurrent anomalies"
    );
}

#[test]
fn half_trained_model_remains_accurate() {
    // Paper Table 3: S2G|T|/2 is close to S2G|T|.
    let data = generate_sed_with_length(20_000, 4);
    let window = 75;
    let truth = truth_of(&data);
    let k = truth.count();

    let full = s2g_accuracy(&data, window);

    let half = Series2Graph::fit(
        &data.series.prefix(data.len() / 2),
        &S2gConfig::new(50).with_lambda(16),
    )
    .and_then(|m| m.anomaly_scores(&data.series, window))
    .map(|s| top_k_accuracy(&s, window, &truth, k))
    .unwrap();

    assert!(
        half >= full - 0.3,
        "half-trained accuracy {half} fell too far below full {full}"
    );
}

#[test]
fn model_scores_unseen_continuation() {
    // Fit on one recording, score a different recording from the same process.
    let train = generate_sed_with_length(15_000, 10);
    let test = generate_sed_with_length(8_000, 11);
    let model = Series2Graph::fit(&train.series, &S2gConfig::new(50).with_lambda(16)).unwrap();
    let scores = model.anomaly_scores(&test.series, 75).unwrap();
    assert_eq!(scores.len(), test.len() - 75 + 1);
    let truth = truth_of(&test);
    let accuracy = top_k_accuracy(&scores, 75, &truth, truth.count());
    assert!(
        accuracy > 0.0,
        "cross-recording scoring found nothing at all"
    );
}

#[test]
fn baselines_and_s2g_agree_on_profile_lengths() {
    let data = generate_srw(SrwConfig {
        length: 6_000,
        num_anomalies: 3,
        noise_ratio: 0.0,
        anomaly_length: 150,
        seed: 2,
    });
    let window = 150;
    let expected = data.len() - window + 1;

    let stomp = stomp_anomaly_scores(&data.series, window).unwrap();
    let dad = dad_anomaly_scores(&data.series, window, 3).unwrap();
    let iforest =
        iforest_anomaly_scores(&data.series, window, IsolationForestParams::default()).unwrap();
    let model = Series2Graph::fit(&data.series, &S2gConfig::new(50).with_lambda(16)).unwrap();
    let s2g = model.anomaly_scores(&data.series, window).unwrap();

    assert_eq!(stomp.len(), expected);
    assert_eq!(dad.len(), expected);
    assert_eq!(iforest.len(), expected);
    assert_eq!(s2g.len(), expected);
}

#[test]
fn facade_prelude_exposes_the_public_api() {
    // Compile-time check that the prelude covers the quick-start workflow.
    let series = TimeSeries::from(
        (0..2000)
            .map(|i| (std::f64::consts::TAU * i as f64 / 40.0).sin())
            .collect::<Vec<_>>(),
    );
    let model = Series2Graph::fit(&series, &S2gConfig::new(20)).unwrap();
    let scores = model.anomaly_scores(&series, 40).unwrap();
    assert_eq!(scores.len(), series.len() - 40 + 1);
    let _ = AnomalyRange::new(0, 10, AnomalyKind::Shape);
    let _ = Dataset::Sed.spec();
}
