//! Prefix training / streaming-style usage: build the graph on an initial
//! segment of a signal, then keep scoring newly arriving batches against that
//! fixed model (the paper's Section 5.4 "convergence of the edge set"
//! experiment, turned into an operational pattern).
//!
//! Run with: `cargo run --release --example streaming_prefix_model`

use series2graph::datasets::sed::generate_sed_with_length;
use series2graph::prelude::*;

fn main() {
    // Full recording: an SED-like disk-revolution signal with anomalies.
    let full = generate_sed_with_length(40_000, 3);
    println!(
        "dataset {}: {} points, {} annotated anomalies",
        full.name,
        full.len(),
        full.anomaly_count()
    );

    // 1. Train on the first 40% of the recording only (it may even contain a
    //    few anomalies — Series2Graph tolerates polluted training data because
    //    rare patterns produce light edges either way).
    let train_len = full.len() * 2 / 5;
    let prefix = full.series.prefix(train_len);
    let model = Series2Graph::fit(&prefix, &S2gConfig::new(50).with_lambda(16))
        .expect("fit on prefix failed");
    println!(
        "model trained on the first {train_len} points: {} nodes, {} edges\n",
        model.node_count(),
        model.graph().edge_count()
    );

    // 2. Process the rest of the recording in batches, as if it were arriving
    //    from a sensor. Each batch is scored against the *fixed* prefix model.
    let window = 150;
    let batch_len = 5_000;
    let mut reported = 0usize;
    let mut batch_start = train_len;
    while batch_start + window < full.len() {
        let batch_end = (batch_start + batch_len).min(full.len());
        let batch = TimeSeries::from(&full.series.values()[batch_start..batch_end]);
        let scores = model
            .anomaly_scores(&batch, window)
            .expect("scoring failed");

        // Report windows whose anomaly score is in the top 1% of the batch.
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let threshold = sorted[(sorted.len() / 100).max(1) - 1];
        let alerts: Vec<usize> = model
            .top_k_anomalies(&scores, 3, window)
            .into_iter()
            .filter(|&i| scores[i] >= threshold && scores[i] > 0.0)
            .map(|i| i + batch_start)
            .collect();

        let true_hits = alerts
            .iter()
            .filter(|&&a| full.window_is_anomalous(a, window))
            .count();
        println!(
            "batch [{batch_start:6}, {batch_end:6}): {} alerts, {} overlap annotated anomalies",
            alerts.len(),
            true_hits
        );
        reported += alerts.len();
        batch_start = batch_end;
    }
    println!("\ntotal alerts raised: {reported}");
    println!(
        "note: the model was never re-trained — the prefix graph keeps separating normal \n\
         revolutions (heavy edges) from anomalous ones (light or missing edges)."
    );
}
