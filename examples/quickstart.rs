//! Quick start: detect a single subsequence anomaly in a periodic signal.
//!
//! Run with: `cargo run --release --example quickstart`

use series2graph::prelude::*;

fn main() {
    // 1. Build a toy signal: a clean sine wave with one burst of a different
    //    shape (higher frequency, lower amplitude) hidden in the middle.
    let n = 10_000;
    let anomaly_start = 6_200;
    let anomaly_len = 180;
    let mut values: Vec<f64> = (0..n)
        .map(|i| (std::f64::consts::TAU * i as f64 / 100.0).sin())
        .collect();
    let burst = anomaly_start..anomaly_start + anomaly_len;
    for (i, v) in values
        .iter_mut()
        .enumerate()
        .take(burst.end)
        .skip(burst.start)
    {
        *v = 0.7 * (std::f64::consts::TAU * i as f64 / 23.0).sin();
    }
    let series = TimeSeries::from(values);

    // 2. Fit the Series2Graph model. The only parameter that matters is the
    //    pattern length ℓ; the paper's defaults (λ = ℓ/3, r = 50 rays, Scott
    //    bandwidth) are filled in by `S2gConfig::new`.
    let config = S2gConfig::new(50);
    let model = Series2Graph::fit(&series, &config).expect("model fitting failed");
    println!(
        "graph built: {} nodes, {} edges, {:.1}% of variance explained by the embedding",
        model.node_count(),
        model.graph().edge_count(),
        model.explained_variance_ratio() * 100.0
    );

    // 3. Score every subsequence of length 200 (the anomaly length does NOT
    //    need to be known exactly — any ℓq ≥ anomaly length works).
    let query_length = 200;
    let scores = model
        .anomaly_scores(&series, query_length)
        .expect("scoring failed");

    // 4. Report the top detection.
    let top = model.top_k_anomalies(&scores, 1, query_length);
    println!("injected anomaly at {anomaly_start} (length {anomaly_len})");
    println!("top detection at    {}", top[0]);
    let hit = (top[0] as i64 - anomaly_start as i64).abs() < query_length as i64;
    println!(
        "detection {}",
        if hit {
            "HITS the injected anomaly"
        } else {
            "missed"
        }
    );
}
