//! Serving a fleet of series with the detection engine: fit several models in
//! parallel, persist and reload one across a simulated process boundary,
//! fan batched scoring across the worker pool, and run pinned streaming
//! sessions — the multi-tenant workload the `s2g-engine` crate exists for.
//!
//! Run with: `cargo run --release --example engine_fleet`

use series2graph::datasets::sed::generate_sed_with_length;
use series2graph::datasets::srw::{generate_srw, SrwConfig};
use series2graph::prelude::*;

fn main() {
    let engine = Engine::new(
        EngineConfig::default()
            .with_workers(4)
            .with_registry_capacity(8),
    );
    println!(
        "engine up: {} workers, registry capacity 8\n",
        engine.workers()
    );

    // 1. Fit one model per tenant, in parallel across the pool. Each tenant
    //    here is a different synthetic data source from the paper's corpus.
    let sed = generate_sed_with_length(20_000, 2);
    let srw = generate_srw(SrwConfig::default());
    let sine = TimeSeries::from(
        (0..15_000)
            .map(|i| (std::f64::consts::TAU * i as f64 / 120.0).sin())
            .collect::<Vec<f64>>(),
    );
    let jobs = vec![
        (
            "sed".to_string(),
            sed.series.clone(),
            S2gConfig::new(50).with_lambda(16),
        ),
        ("srw".to_string(), srw.series.clone(), S2gConfig::new(50)),
        ("sine".to_string(), sine.clone(), S2gConfig::new(60)),
    ];
    for (name, result) in ["sed", "srw", "sine"].iter().zip(engine.fit_many(jobs)) {
        let model = result.expect("parallel fit failed");
        println!(
            "fitted {name:>4}: {} nodes, {} edges, {:.1}% variance explained",
            model.node_count(),
            model.graph().edge_count(),
            100.0 * model.explained_variance_ratio()
        );
    }

    // 2. Persist one model and load it back under a new name — the loaded
    //    copy scores bit-identically, which is what makes "train once, score
    //    everywhere" safe.
    let model_path = std::env::temp_dir().join("engine_fleet_sed.s2g");
    engine.save_model("sed", &model_path).expect("save failed");
    engine
        .load_model("sed-restored", &model_path)
        .expect("load failed");
    let probe = sed.series.prefix(5_000);
    let a = engine
        .score_many("sed", vec![probe.clone()], 150)
        .unwrap()
        .remove(0)
        .unwrap();
    let b = engine
        .score_many("sed-restored", vec![probe], 150)
        .unwrap()
        .remove(0)
        .unwrap();
    assert_eq!(a, b, "restored model must score identically");
    println!(
        "\npersisted sed model round-trips exactly ({} bytes at {})",
        std::fs::metadata(&model_path).map(|m| m.len()).unwrap_or(0),
        model_path.display()
    );

    // 3. Batched scoring: eight shifted replicas of the sine tenant's signal,
    //    fanned across the pool; results come back in submission order.
    let fleet: Vec<TimeSeries> = (0..8)
        .map(|k| {
            TimeSeries::from(
                (0..6_000)
                    .map(|i| {
                        let t = (i + 37 * k) as f64;
                        (std::f64::consts::TAU * t / 120.0).sin()
                            + if i / 1_000 == k { 0.6 } else { 0.0 } // per-series level shift
                    })
                    .collect::<Vec<f64>>(),
            )
        })
        .collect();
    let profiles = engine
        .score_many("sine", fleet, 180)
        .expect("batch scoring failed");
    for (k, profile) in profiles.into_iter().enumerate() {
        let profile = profile.expect("scoring a fleet member failed");
        let top = profile
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, s)| (i, *s))
            .unwrap();
        println!(
            "fleet[{k}]: top anomaly window starts at {:>5} (score {:.3})",
            top.0, top.1
        );
    }

    // 4. Streaming: two sensors share the sine model; each session is pinned
    //    to one pool shard and consumes its points incrementally.
    engine.open_stream("sensor-a", "sine", 180).unwrap();
    engine.open_stream("sensor-b", "sine", 180).unwrap();
    let live: Vec<f64> = (0..2_000)
        .map(|i| (std::f64::consts::TAU * i as f64 / 120.0).sin())
        .collect();
    let mut emitted_a = Vec::new();
    for chunk in live.chunks(256) {
        emitted_a.extend(engine.push_stream("sensor-a", chunk).unwrap());
    }
    let emitted_b = engine.push_stream("sensor-b", &live).unwrap();
    assert_eq!(
        emitted_a, emitted_b,
        "chunking must not change streamed scores"
    );
    println!(
        "\nstreaming: {} windows per sensor, chunked and unchunked sessions agree",
        emitted_a.len()
    );
    engine.close_stream("sensor-a").unwrap();
    engine.close_stream("sensor-b").unwrap();

    std::fs::remove_file(&model_path).ok();
    println!("\nregistry now holds: {:?}", engine.registry().names());
}
