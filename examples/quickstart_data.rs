//! Generates the bundled synthetic dataset used by the README quickstart:
//! an SRW (sinusoid + random walk) series with five labeled anomalies,
//! plus the ground-truth anomaly ranges.
//!
//! Series2Graph is unsupervised: the quickstart fits on the very series it
//! analyses (the graph is robust to the rare anomalous subsequences), so a
//! single file is all the quickstart needs.
//!
//! Run with: `cargo run --release --example quickstart_data`
//!
//! Writes into `./quickstart-data/`:
//!   * `series.csv` — 20 000 points with 5 injected anomalies of length 200
//!   * `labels.csv` — `(start, length)` of each injected anomaly

use series2graph::datasets::Dataset;
use series2graph::timeseries::io;

fn main() {
    let out_dir = std::path::Path::new("quickstart-data");
    std::fs::create_dir_all(out_dir).expect("create quickstart-data/");

    // Fixed seed: every run (and every reader of the README) gets
    // identical bytes, so the reported detections are reproducible.
    let data = Dataset::Srw {
        num_anomalies: 5,
        noise_ratio: 0.05,
        anomaly_length: 200,
    }
    .generate_with_length(20_000, 42);
    io::write_series(out_dir.join("series.csv"), &data.series).expect("write series.csv");
    let ranges: Vec<(usize, usize)> = data.anomalies.iter().map(|a| (a.start, a.length)).collect();
    io::write_label_ranges(out_dir.join("labels.csv"), &ranges).expect("write labels.csv");

    println!(
        "wrote {}/series.csv ({} points, {} anomalies) and labels.csv",
        out_dir.display(),
        data.len(),
        data.anomaly_count()
    );
    for a in &data.anomalies {
        println!("  anomaly at {}..{} ({:?})", a.start, a.end(), a.kind);
    }
}
