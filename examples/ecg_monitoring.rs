//! ECG monitoring: find premature heartbeats in an MBA-like electrocardiogram.
//!
//! This is the scenario that motivates the paper: recurrent anomalies
//! (premature ventricular / supraventricular beats) that repeat dozens of
//! times and therefore defeat plain discord detectors. Series2Graph finds
//! them without labels and without knowing how many there are.
//!
//! Run with: `cargo run --release --example ecg_monitoring`

use series2graph::datasets::mba::{generate_mba_with_length, MbaRecord};
use series2graph::prelude::*;

fn main() {
    // 1. Generate a 20 000-point ECG modelled after MBA record 803
    //    (predominantly ventricular premature beats).
    let data = generate_mba_with_length(MbaRecord::R803, 20_000, 42);
    println!(
        "dataset {}: {} points, {} annotated premature beats",
        data.name,
        data.len(),
        data.anomaly_count()
    );

    // 2. Fit Series2Graph with the paper's fixed configuration (ℓ=50, λ=16):
    //    no per-dataset tuning.
    let model = Series2Graph::fit(&data.series, &S2gConfig::new(50).with_lambda(16))
        .expect("model fitting failed");

    // 3. Score windows of the annotated anomaly length (75 points ≈ one beat)
    //    and retrieve as many detections as there are annotated anomalies.
    let window = 75;
    let scores = model
        .anomaly_scores(&data.series, window)
        .expect("scoring failed");
    let k = data.anomaly_count();
    let detections = model.top_k_anomalies(&scores, k, window);

    // 4. Evaluate against the ground truth with the paper's Top-k accuracy.
    let truth = GroundTruth::new(data.anomalies.iter().map(|a| (a.start, a.length)).collect());
    let accuracy = top_k_accuracy(&scores, window, &truth, k);

    println!("top-{k} detections (start offsets): {detections:?}");
    println!("Top-k accuracy: {accuracy:.2}");

    // 5. Show how the beats' kinds break down among the hits.
    let mut ventricular = 0;
    let mut supraventricular = 0;
    for &d in &detections {
        if let Some(a) = data.anomalies.iter().find(|a| a.overlaps_window(d, window)) {
            match a.kind {
                AnomalyKind::VentricularBeat => ventricular += 1,
                AnomalyKind::SupraventricularBeat => supraventricular += 1,
                _ => {}
            }
        }
    }
    println!("hits by type: {ventricular} ventricular, {supraventricular} supraventricular");
}
