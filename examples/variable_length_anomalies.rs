//! Length flexibility: one model, anomalies of several lengths.
//!
//! The key practical advantage of Series2Graph over discord-based methods is
//! that the graph is built once with a single pattern length ℓ and can then
//! score subsequences of *any* length ℓq ≥ ℓ. This example injects anomalies
//! of three different lengths into one series, builds one model, and shows
//! that every anomaly is found by scoring at its own length — and that even a
//! single intermediate query length finds all of them.
//!
//! Run with: `cargo run --release --example variable_length_anomalies`

use series2graph::prelude::*;

/// Injects a higher-frequency burst of the given length at `start`.
fn inject(values: &mut [f64], start: usize, len: usize) {
    for (offset, v) in values[start..start + len].iter_mut().enumerate() {
        *v = 0.8 * (std::f64::consts::TAU * offset as f64 / 21.0).sin();
    }
}

fn main() {
    let n = 30_000;
    let mut values: Vec<f64> = (0..n)
        .map(|i| (std::f64::consts::TAU * i as f64 / 120.0).sin())
        .collect();

    // Three anomalies with different lengths.
    let anomalies: [(usize, usize); 3] = [(6_000, 150), (15_000, 400), (24_000, 800)];
    for &(start, len) in &anomalies {
        inject(&mut values, start, len);
    }
    let series = TimeSeries::from(values);

    // One model, built once, with a pattern length far below every anomaly length.
    let model = Series2Graph::fit(&series, &S2gConfig::new(60)).expect("fit failed");
    println!(
        "model built once: {} nodes, {} edges\n",
        model.node_count(),
        model.graph().edge_count()
    );

    // (a) Score each anomaly at its own length.
    for &(start, len) in &anomalies {
        let scores = model.anomaly_scores(&series, len).expect("scoring failed");
        let top = model.top_k_anomalies(&scores, 1, len)[0];
        let hit = (top as i64 - start as i64).abs() < len as i64;
        println!(
            "query length {len:4}: top detection at {top:6} (injected at {start:6}) -> {}",
            if hit { "hit" } else { "miss" }
        );
    }

    // (b) A single query length (here 400) still ranks all three anomalies at
    //     the top, because the score only depends on how rare the traversed
    //     edges are, not on an exact length match.
    let query = 400;
    let scores = model
        .anomaly_scores(&series, query)
        .expect("scoring failed");
    let top3 = model.top_k_anomalies(&scores, 3, query);
    println!("\nsingle query length {query}: top-3 detections at {top3:?}");
    let hits = top3
        .iter()
        .filter(|&&t| {
            anomalies
                .iter()
                .any(|&(s, l)| (t as i64 - s as i64).abs() < l as i64 + query as i64)
        })
        .count();
    println!("{hits}/3 injected anomalies recovered with one query length");
}
