//! Method comparison: Series2Graph vs the discord / outlier baselines on a
//! dataset with recurrent anomalies — a miniature version of the paper's
//! Table 3 runnable in a few seconds.
//!
//! Run with: `cargo run --release --example method_comparison`

use series2graph::baselines::discord::dad_anomaly_scores;
use series2graph::baselines::grammar::{grammarviz_anomaly_scores, GrammarVizParams};
use series2graph::baselines::iforest::{iforest_anomaly_scores, IsolationForestParams};
use series2graph::baselines::lof::{lof_anomaly_scores, LofParams};
use series2graph::baselines::matrix_profile::stomp_anomaly_scores;
use series2graph::datasets::srw::{generate_srw, SrwConfig};
use series2graph::prelude::*;

fn main() {
    // An SRW dataset with 10 recurrent anomalies (same generator as the paper's
    // synthetic benchmark family).
    let data = generate_srw(SrwConfig {
        length: 20_000,
        num_anomalies: 10,
        noise_ratio: 0.05,
        anomaly_length: 200,
        seed: 7,
    });
    let window = 200;
    let k = data.anomaly_count();
    let truth = GroundTruth::new(data.anomalies.iter().map(|a| (a.start, a.length)).collect());
    println!(
        "dataset {}: {} points, {} anomalies\n",
        data.name,
        data.len(),
        k
    );

    let mut results: Vec<(&str, f64)> = Vec::new();

    // Series2Graph (paper configuration: ℓ=50, λ=16, query length = anomaly length).
    let model = Series2Graph::fit(&data.series, &S2gConfig::new(50).with_lambda(16)).unwrap();
    let s2g_scores = model.anomaly_scores(&data.series, window).unwrap();
    results.push((
        "Series2Graph",
        top_k_accuracy(&s2g_scores, window, &truth, k),
    ));

    // STOMP (1st discords).
    let stomp = stomp_anomaly_scores(&data.series, window).unwrap();
    results.push(("STOMP", top_k_accuracy(&stomp, window, &truth, k)));

    // DAD (m-th discord with m = k).
    let dad = dad_anomaly_scores(&data.series, window, k).unwrap();
    results.push((
        "DAD (m-th discord)",
        top_k_accuracy(&dad, window, &truth, k),
    ));

    // GrammarViz-style grammar rule density.
    let gv = grammarviz_anomaly_scores(&data.series, window, GrammarVizParams::default()).unwrap();
    results.push(("GrammarViz-style", top_k_accuracy(&gv, window, &truth, k)));

    // Local Outlier Factor.
    let lof = lof_anomaly_scores(&data.series, window, LofParams::default()).unwrap();
    results.push(("LOF", top_k_accuracy(&lof, window, &truth, k)));

    // Isolation Forest.
    let iforest =
        iforest_anomaly_scores(&data.series, window, IsolationForestParams::default()).unwrap();
    results.push((
        "Isolation Forest",
        top_k_accuracy(&iforest, window, &truth, k),
    ));

    println!("{:<22} Top-k accuracy", "method");
    println!("{}", "-".repeat(40));
    for (name, accuracy) in &results {
        println!("{name:<22} {accuracy:.2}");
    }

    let (best, best_acc) = results
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("at least one result");
    println!("\nbest method: {best} ({best_acc:.2})");
}
